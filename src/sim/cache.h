#ifndef GPUJOIN_SIM_CACHE_H_
#define GPUJOIN_SIM_CACHE_H_

#include <cstdint>
#include <vector>

#include "util/bit_util.h"
#include "util/check.h"

namespace gpujoin::sim {

// Set-associative cache model with LRU replacement, tracked at cacheline
// granularity. Used for the simulated GPU L1 and L2 caches. The model only
// tracks presence (tags), not contents — functional data lives in the data
// structures themselves.
//
// Storage is struct-of-arrays: the hit path scans a set's tags
// contiguously (one or two cache lines of the host machine for typical
// associativities) and only touches the recency metadata of the one way
// it hits or installs.
class Cache {
 public:
  // `size_bytes` and `line_bytes` must be powers of two; associativity is
  // clamped so that there is at least one set.
  Cache(uint64_t size_bytes, uint32_t line_bytes, int ways);

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  // Touches the line containing `line_id` (an already line-aligned
  // identifier, e.g. addr / line_bytes). Returns true on hit; on miss the
  // line is installed, evicting the set's LRU line.
  //
  // Defined inline: this is the innermost call of the simulator's memory
  // hierarchy (up to three invocations per simulated transaction).
  bool Access(uint64_t line_id) {
    const uint64_t base = (line_id & set_mask_) * ways_;
    ++tick_;
    const uint64_t* tags = &tags_[base];
    const uint64_t* use = &last_use_[base];
    // One fused pass: search the tags while tracking the LRU way (first
    // index among the minima, same tie-break as the scan-while-searching
    // implementation this replaced). Hits exit early; misses have their
    // victim ready without a second sweep.
    int lru = 0;
    uint64_t lru_use = use[0];
    for (int w = 0; w < ways_; ++w) {
      if (tags[w] == line_id) {
        const uint64_t slot = base + w;
        last_use_[slot] = tick_;
        ++touches_[slot];
        mru_slot_ = slot;
        return true;
      }
      if (use[w] < lru_use) {
        lru_use = use[w];
        lru = w;
      }
    }
    const uint64_t slot = base + lru;
    tags_[slot] = line_id;
    last_use_[slot] = tick_;
    touches_[slot] = 1;
    mru_slot_ = slot;
    return false;
  }

  // Re-touches the entry the previous Access() hit or installed, exactly
  // as a hit of that line would. Callers use this to fast-path repeated
  // touches of one line; they must guarantee no other Access, Clear or
  // FlushCold happened in between (the MemoryModel resets its memo on
  // flush/clear to uphold this).
  void TouchMru() {
    ++tick_;
    last_use_[mru_slot_] = tick_;
    ++touches_[mru_slot_];
  }

  // Probes without installing or updating recency.
  bool Contains(uint64_t line_id) const {
    const uint64_t base = (line_id & set_mask_) * ways_;
    const uint64_t* tags = &tags_[base];
    for (int w = 0; w < ways_; ++w) {
      if (tags[w] == line_id) return true;
    }
    return false;
  }

  // Drops all cached lines (e.g. between independent experiment runs).
  void Clear();

  // Drops lines touched fewer than `min_touches` times since they were
  // installed (or since the last flush). Models heavy churn that evicts
  // everything except constantly re-touched hot lines; touch counts reset.
  void FlushCold(uint64_t min_touches);

  uint64_t size_bytes() const { return size_bytes_; }
  uint32_t line_bytes() const { return line_bytes_; }
  int ways() const { return ways_; }
  uint64_t num_sets() const { return num_sets_; }

 private:
  static constexpr uint64_t kInvalidTag = ~uint64_t{0};

  uint64_t size_bytes_;
  uint32_t line_bytes_;
  int ways_;
  uint64_t num_sets_;
  uint64_t set_mask_;
  uint64_t tick_ = 0;
  uint64_t mru_slot_ = 0;
  // Parallel arrays of num_sets_ * ways_ entries, indexed set * ways + w.
  std::vector<uint64_t> tags_;
  std::vector<uint64_t> last_use_;
  std::vector<uint64_t> touches_;
};

}  // namespace gpujoin::sim

#endif  // GPUJOIN_SIM_CACHE_H_
