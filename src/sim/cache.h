#ifndef GPUJOIN_SIM_CACHE_H_
#define GPUJOIN_SIM_CACHE_H_

#include <cstdint>
#include <vector>

#include "util/bit_util.h"
#include "util/check.h"

namespace gpujoin::sim {

// Set-associative cache model with LRU replacement, tracked at cacheline
// granularity. Used for the simulated GPU L1 and L2 caches. The model only
// tracks presence (tags), not contents — functional data lives in the data
// structures themselves.
class Cache {
 public:
  // `size_bytes` and `line_bytes` must be powers of two; associativity is
  // clamped so that there is at least one set.
  Cache(uint64_t size_bytes, uint32_t line_bytes, int ways);

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  // Touches the line containing `line_id` (an already line-aligned
  // identifier, e.g. addr / line_bytes). Returns true on hit; on miss the
  // line is installed, evicting the set's LRU line.
  bool Access(uint64_t line_id);

  // Probes without installing or updating recency.
  bool Contains(uint64_t line_id) const;

  // Drops all cached lines (e.g. between independent experiment runs).
  void Clear();

  // Drops lines touched fewer than `min_touches` times since they were
  // installed (or since the last flush). Models heavy churn that evicts
  // everything except constantly re-touched hot lines; touch counts reset.
  void FlushCold(uint64_t min_touches);

  uint64_t size_bytes() const { return size_bytes_; }
  uint32_t line_bytes() const { return line_bytes_; }
  int ways() const { return ways_; }
  uint64_t num_sets() const { return num_sets_; }

 private:
  struct Way {
    uint64_t tag = kInvalidTag;
    uint64_t last_use = 0;
    uint64_t touches = 0;
  };
  static constexpr uint64_t kInvalidTag = ~uint64_t{0};

  uint64_t size_bytes_;
  uint32_t line_bytes_;
  int ways_;
  uint64_t num_sets_;
  uint64_t set_mask_;
  uint64_t tick_ = 0;
  std::vector<Way> ways_storage_;  // num_sets_ * ways_
};

}  // namespace gpujoin::sim

#endif  // GPUJOIN_SIM_CACHE_H_
