#include "sim/trace.h"

#include <algorithm>
#include <sstream>

#include "util/units.h"

namespace gpujoin::sim {

const char* ServiceLevelName(ServiceLevel level) {
  switch (level) {
    case ServiceLevel::kL1:
      return "L1";
    case ServiceLevel::kL2:
      return "L2";
    case ServiceLevel::kHbm:
      return "HBM";
    case ServiceLevel::kInterconnect:
      return "interconnect";
  }
  return "?";
}

TraceRecorder::RegionStats& TraceRecorder::Resolve(mem::VirtAddr addr) {
  const mem::Region* region = space_->FindRegion(addr);
  return by_region_[region != nullptr ? region->name : std::string()];
}

void TraceRecorder::OnTransaction(mem::VirtAddr addr, ServiceLevel level,
                                  bool is_write) {
  RegionStats& stats = Resolve(addr);
  ++stats.transactions;
  switch (level) {
    case ServiceLevel::kL1:
      ++stats.l1_hits;
      break;
    case ServiceLevel::kL2:
      ++stats.l2_hits;
      break;
    case ServiceLevel::kHbm:
    case ServiceLevel::kInterconnect:
      ++stats.memory_transactions;
      break;
  }
  if (is_write) ++stats.writes;
}

void TraceRecorder::OnStream(mem::VirtAddr addr, uint64_t bytes,
                             bool is_write) {
  RegionStats& stats = Resolve(addr);
  stats.stream_bytes += bytes;
  if (is_write) ++stats.writes;
}

const TraceRecorder::RegionStats& TraceRecorder::ForRegion(
    const std::string& name) const {
  static const RegionStats kEmpty;
  auto it = by_region_.find(name);
  return it != by_region_.end() ? it->second : kEmpty;
}

std::string TraceRecorder::Summary() const {
  std::vector<std::pair<std::string, const RegionStats*>> rows;
  rows.reserve(by_region_.size());
  for (const auto& [name, stats] : by_region_) {
    rows.emplace_back(name, &stats);
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second->transactions + a.second->stream_bytes >
           b.second->transactions + b.second->stream_bytes;
  });

  std::ostringstream os;
  for (const auto& [name, stats] : rows) {
    os << (name.empty() ? "<unmapped>" : name) << ": "
       << FormatCount(static_cast<double>(stats->transactions))
       << " transactions (L1 "
       << FormatCount(static_cast<double>(stats->l1_hits)) << ", L2 "
       << FormatCount(static_cast<double>(stats->l2_hits)) << ", mem "
       << FormatCount(static_cast<double>(stats->memory_transactions))
       << "), streams "
       << FormatBytes(static_cast<double>(stats->stream_bytes)) << "\n";
  }
  return os.str();
}

}  // namespace gpujoin::sim
