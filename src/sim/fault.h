#ifndef GPUJOIN_SIM_FAULT_H_
#define GPUJOIN_SIM_FAULT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/counters.h"
#include "util/rng.h"
#include "util/status.h"

namespace gpujoin::sim {

// The transient anomalies a real NVLink/PCIe out-of-core join pipeline
// sees, which the fail-stop simulator could not express (see DESIGN.md
// "Fault model and recovery"). Each class is injected at a configurable
// per-event rate by a seeded FaultInjector, so every faulty run is
// reproducible bit for bit.
enum class FaultClass : uint8_t {
  kTranslationTimeout = 0,  // IOMMU translation request timed out
  kRemoteReadError = 1,     // interconnect read needs a retry
  kBandwidthDegradation = 2,  // link retraining episode at reduced rate
  kAllocationFailure = 3,     // simulated GPU memory allocation failed
};

const char* FaultClassName(FaultClass cls);

// Per-event injection rates plus the bounded-retry policy applied at the
// memory-model level. All rates default to zero: with the default config
// no injector is attached and every hardware counter is bit-identical to
// a fault-free build.
struct FaultConfig {
  uint64_t seed = 0xFA17;

  // Probability that one translation request to the CPU IOMMU times out.
  double translation_timeout_rate = 0;
  // Probability that one host-bound cacheline read must be re-transferred.
  double remote_read_error_rate = 0;
  // Probability per host-bound line that a bandwidth-degradation episode
  // (link retraining) begins; the episode then lasts
  // `degradation_episode_lines` host lines at degraded rate.
  double degradation_episode_rate = 0;
  uint64_t degradation_episode_lines = uint64_t{1} << 14;
  // Probability that one simulated device-memory reservation fails.
  double alloc_failure_rate = 0;

  // Bounded retry with exponential backoff for the transient classes
  // (translation timeouts, remote-read errors). `max_retries == 0` is
  // fail-stop: the first injected fault of those classes is fatal and
  // surfaces as a Status through the pipeline.
  int max_retries = 4;
  // Simulated wait before the first retry; doubles per further attempt.
  // Charged through sim::CostModel via CounterSet::fault_backoff_nanos.
  double backoff_base = 2e-6;

  bool enabled() const {
    return translation_timeout_rate > 0 || remote_read_error_rate > 0 ||
           degradation_episode_rate > 0 || alloc_failure_rate > 0;
  }

  // Uniform sweep helper: the same rate for every fault class.
  static FaultConfig AllClasses(double rate, uint64_t seed = 0xFA17);
};

// Seeded, deterministic fault source consulted by the MemoryModel on the
// interconnect path (translations, host-bound lines) and on device
// reservations. The injector mutates the CounterSet it is handed: retries
// re-charge the original event's counters (a retried translation is one
// more translation request; a re-transferred line is one more line of
// host traffic) and the robustness counters record what was injected, so
// the CostModel converts recovery work into simulated time exactly like
// first-try work.
//
// Determinism: all decisions come from one Xoshiro256 stream owned by the
// injector, and the simulator consults it single-threaded in program
// order, so a (config, workload) pair always injects the same faults.
// Reset() re-arms the stream so independent runs on one experiment are
// mutually reproducible.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Re-arms the injector to its initial seeded state (between runs).
  void Reset();

  // One translation request was issued. May inject a timeout and the
  // bounded retry chain that recovers from it.
  void OnTranslation(CounterSet* counters);

  // `n_lines` host-bound cacheline transactions of `line_bytes` each.
  // `is_read` and `random` select which traffic counter a re-transfer is
  // charged to. May inject retryable read errors and progress / begin
  // bandwidth-degradation episodes.
  void OnHostLines(uint64_t n_lines, uint32_t line_bytes, bool is_read,
                   bool random, CounterSet* counters);

  // One simulated device-memory reservation. Returns true when the
  // allocation fails this time (the caller decides how to degrade).
  bool OnDeviceReserve(CounterSet* counters);

  // First unrecoverable fault (retry budget exhausted, or any transient
  // fault under `max_retries == 0`). Sticky until Reset(); the pipeline
  // checks it at kernel/window boundaries and propagates it as a Status
  // instead of aborting the process.
  const Status& fatal_status() const { return fatal_; }
  bool failed() const { return !fatal_.ok(); }

  const FaultConfig& config() const { return config_; }

 private:
  bool Draw(double rate) {
    return rate > 0 && rng_.NextDouble() < rate;
  }
  // Deterministic approximate binomial: how many of `n` independent
  // events at `rate` fire (expected value plus one Bernoulli draw for the
  // fractional remainder — exact for n == 1).
  uint64_t DrawCount(uint64_t n, double rate);
  // Geometric gap: host lines until the next episode begins (>= 1).
  uint64_t DrawGeometricGap(double rate);
  void ChargeBackoff(int attempt, CounterSet* counters);
  void SetFatal(FaultClass cls, const std::string& what);

  FaultConfig config_;
  Xoshiro256 rng_;
  // Bandwidth-degradation state machine: lines left in the current
  // episode, and lines until the next one starts (0 = not yet drawn).
  uint64_t episode_lines_left_ = 0;
  uint64_t gap_lines_left_ = 0;
  Status fatal_;
};

// --------------------------------------------------------------------
// Device-level fault classes (DESIGN.md Sec. 13). The memory-level
// injector above models transient anomalies *within* one device; these
// model the device (or its host link) itself failing, on the simulated
// clock. dist::ShardScheduler evaluates the timeline at window
// boundaries: terminal faults trigger heartbeat-timeout detection and
// key-range failover, transient episodes stretch the affected shard's
// window time.

enum class DeviceFaultClass : uint8_t {
  kShardCrash = 0,  // device dies at `at_seconds`, permanently
  kShardStuck = 1,  // device stops making progress (burns, never finishes)
  kShardSlow = 2,   // episode: device time stretched by `slow_factor`
  kLinkDown = 3,    // host link unusable; permanent episodes kill the shard
};

const char* DeviceFaultClassName(DeviceFaultClass cls);

// One scheduled device fault. Crash and stuck faults are terminal from
// `at_seconds` on; slow and link-down faults are episodes over
// [at_seconds, at_seconds + duration_seconds), with duration_seconds <= 0
// meaning "forever" (which makes a link-down terminal too — a shard whose
// host link never returns is as dead as a crashed one).
struct DeviceFaultEvent {
  DeviceFaultClass cls = DeviceFaultClass::kShardCrash;
  int shard = 0;                 // target device
  double at_seconds = 0;         // simulated (sample-scale) start time
  double duration_seconds = 0;   // episodes only; <= 0 = forever
  double slow_factor = 4.0;      // kShardSlow: device-time multiplier
};

// Deterministic device-fault schedule: explicit events plus optionally a
// seeded stream of random slow episodes per shard (exponential gaps at
// `random_slow_rate` episodes per simulated second over
// `random_horizon_seconds`). Empty config = no device faults, and every
// scheduler path is bit-identical to a build without this machinery.
struct DeviceFaultConfig {
  uint64_t seed = 0xDEAD;
  std::vector<DeviceFaultEvent> events;

  // Seeded random slow-shard episodes (0 disables).
  double random_slow_rate = 0;          // episodes / simulated second
  double random_slow_duration = 1e-4;   // mean episode length, seconds
  double random_slow_factor = 4.0;
  double random_horizon_seconds = 0;    // generate episodes in [0, horizon)

  bool enabled() const {
    return !events.empty() ||
           (random_slow_rate > 0 && random_horizon_seconds > 0);
  }

  // InvalidArgument naming the offending field when an event is malformed
  // (negative start time, slow factor < 1, shard out of [0, num_shards)).
  Status Validate(int num_shards) const;
};

// The materialized per-shard episode list the scheduler queries. All
// episodes (explicit and random) are generated at construction from the
// seed, so a (config, num_shards) pair always yields the same timeline.
class DeviceFaultTimeline {
 public:
  struct Episode {
    DeviceFaultClass cls;
    double begin = 0;
    double end = 0;  // infinity for terminal faults
    double factor = 1.0;
  };

  DeviceFaultTimeline(const DeviceFaultConfig& config, int num_shards);

  // Earliest terminal fault (crash, stuck, or forever link-down) that has
  // begun at or before `t` for this shard.
  std::optional<Episode> TerminalAt(int shard, double t) const;

  // Earliest terminal fault beginning inside [t0, t1) — the mid-window
  // death test.
  std::optional<Episode> TerminalIn(int shard, double t0, double t1) const;

  // Extra simulated seconds a device busy over [t, t + busy) suffers from
  // transient episodes: a slow episode stretches the overlapped time by
  // (factor - 1), a finite link-down stalls it for the overlap.
  double DelaySeconds(int shard, double t, double busy) const;

  bool enabled() const { return enabled_; }
  const std::vector<Episode>& episodes(int shard) const {
    return episodes_[shard];
  }

 private:
  bool enabled_ = false;
  std::vector<std::vector<Episode>> episodes_;  // per shard, by begin time
};

}  // namespace gpujoin::sim

#endif  // GPUJOIN_SIM_FAULT_H_
