#ifndef GPUJOIN_SIM_FAULT_H_
#define GPUJOIN_SIM_FAULT_H_

#include <cstdint>
#include <string>

#include "sim/counters.h"
#include "util/rng.h"
#include "util/status.h"

namespace gpujoin::sim {

// The transient anomalies a real NVLink/PCIe out-of-core join pipeline
// sees, which the fail-stop simulator could not express (see DESIGN.md
// "Fault model and recovery"). Each class is injected at a configurable
// per-event rate by a seeded FaultInjector, so every faulty run is
// reproducible bit for bit.
enum class FaultClass : uint8_t {
  kTranslationTimeout = 0,  // IOMMU translation request timed out
  kRemoteReadError = 1,     // interconnect read needs a retry
  kBandwidthDegradation = 2,  // link retraining episode at reduced rate
  kAllocationFailure = 3,     // simulated GPU memory allocation failed
};

const char* FaultClassName(FaultClass cls);

// Per-event injection rates plus the bounded-retry policy applied at the
// memory-model level. All rates default to zero: with the default config
// no injector is attached and every hardware counter is bit-identical to
// a fault-free build.
struct FaultConfig {
  uint64_t seed = 0xFA17;

  // Probability that one translation request to the CPU IOMMU times out.
  double translation_timeout_rate = 0;
  // Probability that one host-bound cacheline read must be re-transferred.
  double remote_read_error_rate = 0;
  // Probability per host-bound line that a bandwidth-degradation episode
  // (link retraining) begins; the episode then lasts
  // `degradation_episode_lines` host lines at degraded rate.
  double degradation_episode_rate = 0;
  uint64_t degradation_episode_lines = uint64_t{1} << 14;
  // Probability that one simulated device-memory reservation fails.
  double alloc_failure_rate = 0;

  // Bounded retry with exponential backoff for the transient classes
  // (translation timeouts, remote-read errors). `max_retries == 0` is
  // fail-stop: the first injected fault of those classes is fatal and
  // surfaces as a Status through the pipeline.
  int max_retries = 4;
  // Simulated wait before the first retry; doubles per further attempt.
  // Charged through sim::CostModel via CounterSet::fault_backoff_nanos.
  double backoff_base = 2e-6;

  bool enabled() const {
    return translation_timeout_rate > 0 || remote_read_error_rate > 0 ||
           degradation_episode_rate > 0 || alloc_failure_rate > 0;
  }

  // Uniform sweep helper: the same rate for every fault class.
  static FaultConfig AllClasses(double rate, uint64_t seed = 0xFA17);
};

// Seeded, deterministic fault source consulted by the MemoryModel on the
// interconnect path (translations, host-bound lines) and on device
// reservations. The injector mutates the CounterSet it is handed: retries
// re-charge the original event's counters (a retried translation is one
// more translation request; a re-transferred line is one more line of
// host traffic) and the robustness counters record what was injected, so
// the CostModel converts recovery work into simulated time exactly like
// first-try work.
//
// Determinism: all decisions come from one Xoshiro256 stream owned by the
// injector, and the simulator consults it single-threaded in program
// order, so a (config, workload) pair always injects the same faults.
// Reset() re-arms the stream so independent runs on one experiment are
// mutually reproducible.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Re-arms the injector to its initial seeded state (between runs).
  void Reset();

  // One translation request was issued. May inject a timeout and the
  // bounded retry chain that recovers from it.
  void OnTranslation(CounterSet* counters);

  // `n_lines` host-bound cacheline transactions of `line_bytes` each.
  // `is_read` and `random` select which traffic counter a re-transfer is
  // charged to. May inject retryable read errors and progress / begin
  // bandwidth-degradation episodes.
  void OnHostLines(uint64_t n_lines, uint32_t line_bytes, bool is_read,
                   bool random, CounterSet* counters);

  // One simulated device-memory reservation. Returns true when the
  // allocation fails this time (the caller decides how to degrade).
  bool OnDeviceReserve(CounterSet* counters);

  // First unrecoverable fault (retry budget exhausted, or any transient
  // fault under `max_retries == 0`). Sticky until Reset(); the pipeline
  // checks it at kernel/window boundaries and propagates it as a Status
  // instead of aborting the process.
  const Status& fatal_status() const { return fatal_; }
  bool failed() const { return !fatal_.ok(); }

  const FaultConfig& config() const { return config_; }

 private:
  bool Draw(double rate) {
    return rate > 0 && rng_.NextDouble() < rate;
  }
  // Deterministic approximate binomial: how many of `n` independent
  // events at `rate` fire (expected value plus one Bernoulli draw for the
  // fractional remainder — exact for n == 1).
  uint64_t DrawCount(uint64_t n, double rate);
  // Geometric gap: host lines until the next episode begins (>= 1).
  uint64_t DrawGeometricGap(double rate);
  void ChargeBackoff(int attempt, CounterSet* counters);
  void SetFatal(FaultClass cls, const std::string& what);

  FaultConfig config_;
  Xoshiro256 rng_;
  // Bandwidth-degradation state machine: lines left in the current
  // episode, and lines until the next one starts (0 = not yet drawn).
  uint64_t episode_lines_left_ = 0;
  uint64_t gap_lines_left_ = 0;
  Status fatal_;
};

}  // namespace gpujoin::sim

#endif  // GPUJOIN_SIM_FAULT_H_
