#include "sim/memory_model.h"

#include <algorithm>
#include <array>

namespace gpujoin::sim {

MemoryModel::MemoryModel(mem::AddressSpace* space, const GpuSpec& gpu)
    : space_(space),
      gpu_(gpu),
      page_table_(space),
      l1_(gpu.l1_size, gpu.cacheline_bytes, gpu.l1_ways),
      l2_(gpu.l2_size, gpu.cacheline_bytes, gpu.l2_ways),
      tlb_(gpu.tlb_coverage, space->page_size(mem::MemKind::kHost),
           gpu.tlb_ways) {}

void MemoryModel::TouchLine(uint64_t line_id, AccessType type, bool random) {
  ++counters_.memory_transactions;
  const mem::VirtAddr addr =
      line_id * static_cast<uint64_t>(gpu_.cacheline_bytes);
  const bool is_write = type == AccessType::kWrite;
  if (l1_.Access(line_id)) {
    ++counters_.l1_hits;
    if (observer_ != nullptr) {
      observer_->OnTransaction(addr, ServiceLevel::kL1, is_write);
    }
    return;
  }
  if (l2_.Access(line_id)) {
    ++counters_.l2_hits;
    if (observer_ != nullptr) {
      observer_->OnTransaction(addr, ServiceLevel::kL2, is_write);
    }
    return;
  }
  ++counters_.l2_misses;

  const mem::MemKind kind = space_->KindOf(addr);
  const uint64_t line = gpu_.cacheline_bytes;
  if (observer_ != nullptr) {
    observer_->OnTransaction(addr,
                             kind == mem::MemKind::kDevice
                                 ? ServiceLevel::kHbm
                                 : ServiceLevel::kInterconnect,
                             is_write);
  }
  if (kind == mem::MemKind::kDevice) {
    if (type == AccessType::kRead) {
      counters_.hbm_read_bytes += line;
    } else {
      counters_.hbm_write_bytes += line;
    }
    return;
  }

  // Host-bound transaction: translate, then cross the interconnect.
  const uint64_t vpn = space_->PageNumber(addr, mem::MemKind::kHost);
  if (TlbLookup(vpn)) {
    ++counters_.tlb_hits;
  } else {
    ++counters_.translation_requests;
    page_table_.Translate(addr, mem::MemKind::kHost);
  }
  if (type == AccessType::kRead) {
    if (random) {
      counters_.host_random_read_bytes += line;
    } else {
      counters_.host_seq_read_bytes += line;
    }
  } else {
    counters_.host_write_bytes += line;
  }
}

bool MemoryModel::TlbLookup(uint64_t vpn) {
  // Track the recent page working set: a ring of the last 4 * entries
  // page touches, with a distinct count.
  if (vpn != last_touched_page_) {
    last_touched_page_ = vpn;
    ++page_touch_counter_;
    recent_ring_.push_back(vpn);
    ++recent_counts_[vpn];
    // The window must approximate the pages ALL co-resident warps keep
    // touching, not just this one's: scale it by the warp count.
    const size_t window =
        tlb_.entries() *
        std::max<size_t>(4, static_cast<size_t>(gpu_.tlb_co_resident_warps));
    if (recent_ring_.size() > window) {
      const uint64_t old = recent_ring_.front();
      recent_ring_.pop_front();
      auto it = recent_counts_.find(old);
      if (--it->second == 0) recent_counts_.erase(it);
    }
  }

  const bool resident = tlb_.Access(vpn);
  const uint64_t prev_stamp =
      resident ? page_stamp_[vpn] : page_touch_counter_;
  page_stamp_[vpn] = page_touch_counter_;
  if (!resident) return false;

  // Co-resident-warp interference: between this warp's two touches of the
  // page, other warps touched ~co_resident times as many pages. If the
  // recent working set fits the TLB, that churn re-touches resident pages
  // and evicts nothing; otherwise the entry survives only a short
  // interval.
  const int co_resident = gpu_.tlb_co_resident_warps;
  if (co_resident <= 0) return true;
  if (recent_counts_.size() <= tlb_.entries()) return true;
  const uint64_t elapsed = page_touch_counter_ - prev_stamp;
  return elapsed * static_cast<uint64_t>(co_resident) <= tlb_.entries();
}

void MemoryModel::Gather(const mem::VirtAddr* addrs, uint32_t mask,
                         uint32_t bytes_per_lane, AccessType type) {
  ++counters_.warp_steps;
  if (mask == 0) return;

  // Collect the distinct lines touched by the active lanes. A lane access
  // can straddle a line boundary, so reserve two slots per lane.
  std::array<uint64_t, 2 * kWarpWidth> lines;
  int n = 0;
  const uint64_t line_bytes = gpu_.cacheline_bytes;
  for (int lane = 0; lane < kWarpWidth; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const mem::VirtAddr addr = addrs[lane];
    const uint64_t first = addr / line_bytes;
    const uint64_t last = (addr + bytes_per_lane - 1) / line_bytes;
    lines[n++] = first;
    if (last != first) lines[n++] = last;
  }
  std::sort(lines.begin(), lines.begin() + n);
  uint64_t prev = ~uint64_t{0};
  for (int i = 0; i < n; ++i) {
    if (lines[i] == prev) continue;
    prev = lines[i];
    TouchLine(lines[i], type, /*random=*/true);
  }
}

void MemoryModel::Stream(mem::VirtAddr base, uint64_t bytes,
                         AccessType type) {
  if (bytes == 0) return;
  if (observer_ != nullptr) {
    observer_->OnStream(base, bytes, type == AccessType::kWrite);
  }
  const uint64_t line = gpu_.cacheline_bytes;
  const uint64_t first_line = base / line;
  const uint64_t last_line = (base + bytes - 1) / line;
  const uint64_t line_bytes_total = (last_line - first_line + 1) * line;

  const mem::MemKind kind = space_->KindOf(base);
  counters_.memory_transactions += last_line - first_line + 1;
  if (kind == mem::MemKind::kDevice) {
    if (type == AccessType::kRead) {
      counters_.hbm_read_bytes += line_bytes_total;
    } else {
      counters_.hbm_write_bytes += line_bytes_total;
    }
    return;
  }

  // Host stream: touch each covered page in the TLB (a scan touches few
  // pages and is not subject to frequent TLB misses — paper Sec. 4.3.1).
  const uint64_t page = space_->page_size(mem::MemKind::kHost);
  const uint64_t first_page = base / page;
  const uint64_t last_page = (base + bytes - 1) / page;
  for (uint64_t vpn = first_page; vpn <= last_page; ++vpn) {
    if (TlbLookup(vpn)) {
      ++counters_.tlb_hits;
    } else {
      ++counters_.translation_requests;
      page_table_.Translate(vpn * page, mem::MemKind::kHost);
    }
  }
  if (type == AccessType::kRead) {
    counters_.host_seq_read_bytes += line_bytes_total;
  } else {
    counters_.host_write_bytes += line_bytes_total;
  }
}

void MemoryModel::SerialChain(mem::VirtAddr representative_addr,
                              uint64_t n_loads, AccessType type) {
  if (n_loads == 0) return;
  counters_.serial_dependent_loads += n_loads;
  const uint64_t line = gpu_.cacheline_bytes;
  const mem::MemKind kind = space_->KindOf(representative_addr);
  if (kind == mem::MemKind::kDevice) {
    if (type == AccessType::kRead) {
      counters_.hbm_read_bytes += n_loads * line;
    } else {
      counters_.hbm_write_bytes += n_loads * line;
    }
  } else {
    counters_.host_random_read_bytes += n_loads * line;
  }
}

void MemoryModel::ClearHardwareState() {
  l1_.Clear();
  l2_.Clear();
  tlb_.Clear();
  page_touch_counter_ = 0;
  last_touched_page_ = ~uint64_t{0};
  recent_ring_.clear();
  recent_counts_.clear();
  page_stamp_.clear();
}

}  // namespace gpujoin::sim
