#include "sim/memory_model.h"

#include <algorithm>
#include <array>
#include <bit>
#include <string>

namespace gpujoin::sim {

MemoryModel::MemoryModel(mem::AddressSpace* space, const GpuSpec& gpu)
    : space_(space),
      gpu_(gpu),
      line_shift_(static_cast<uint32_t>(
          bits::Log2Floor(gpu.cacheline_bytes))),
      host_page_shift_(static_cast<uint32_t>(bits::Log2Floor(
          space->page_size(mem::MemKind::kHost)))),
      page_table_(space),
      l1_(gpu.l1_size, gpu.cacheline_bytes, gpu.l1_ways),
      l2_(gpu.l2_size, gpu.cacheline_bytes, gpu.l2_ways),
      tlb_(gpu.tlb_coverage, space->page_size(mem::MemKind::kHost),
           gpu.tlb_ways),
      // The recent window must approximate the pages ALL co-resident
      // warps keep touching, not just this one's: scale it by the warp
      // count. Fixed at construction, so the ring is allocated once.
      recent_window_(tlb_.entries() *
                     std::max<uint64_t>(
                         4, static_cast<uint64_t>(std::max(
                                0, gpu.tlb_co_resident_warps)))),
      ring_(bits::NextPowerOfTwo(recent_window_ + 1)),
      ring_mask_(ring_.size() - 1),
      recent_pages_(std::min<uint64_t>(recent_window_ + 1, 8192)) {}

void MemoryModel::TouchLine(uint64_t line_id, AccessType type, bool random) {
  ++counters_.memory_transactions;
  const bool is_write = type == AccessType::kWrite;
  if (line_id == last_line_id_) {
    // The previous touch left this line in L1 (it either hit or was
    // installed), so a repeated touch is an L1 hit of the MRU entry.
    l1_.TouchMru();
    ++counters_.l1_hits;
    if (!observers_.empty()) {
      NotifyTransaction(line_id << line_shift_, ServiceLevel::kL1, is_write);
    }
    return;
  }
  last_line_id_ = line_id;
  const mem::VirtAddr addr = line_id << line_shift_;
  if (l1_.Access(line_id)) {
    ++counters_.l1_hits;
    if (!observers_.empty()) {
      NotifyTransaction(addr, ServiceLevel::kL1, is_write);
    }
    return;
  }
  if (l2_.Access(line_id)) {
    ++counters_.l2_hits;
    if (!observers_.empty()) {
      NotifyTransaction(addr, ServiceLevel::kL2, is_write);
    }
    return;
  }
  ++counters_.l2_misses;

  const mem::MemKind kind = space_->KindOf(addr);
  const uint64_t line = gpu_.cacheline_bytes;
  if (!observers_.empty()) {
    NotifyTransaction(addr,
                      kind == mem::MemKind::kDevice
                          ? ServiceLevel::kHbm
                          : ServiceLevel::kInterconnect,
                      is_write);
  }
  if (kind == mem::MemKind::kDevice) {
    if (type == AccessType::kRead) {
      counters_.hbm_read_bytes += line;
    } else {
      counters_.hbm_write_bytes += line;
    }
    return;
  }

  // Host-bound transaction: translate, then cross the interconnect.
  const uint64_t vpn = addr >> host_page_shift_;
  if (TlbLookup(vpn)) {
    ++counters_.tlb_hits;
  } else {
    ++counters_.translation_requests;
    page_table_.TranslatePage(vpn, mem::MemKind::kHost);
    if (fault_ != nullptr) fault_->OnTranslation(&counters_);
  }
  if (type == AccessType::kRead) {
    if (random) {
      counters_.host_random_read_bytes += line;
    } else {
      counters_.host_seq_read_bytes += line;
    }
  } else {
    counters_.host_write_bytes += line;
  }
  if (fault_ != nullptr) {
    fault_->OnHostLines(1, gpu_.cacheline_bytes, type == AccessType::kRead,
                        random, &counters_);
  }
}

bool MemoryModel::TlbLookup(uint64_t vpn) {
  if (vpn == last_touched_page_) {
    // Same page as the previous lookup: the translation is the MRU entry
    // of its TLB set (just touched or installed) and the distinct-page
    // clock has not advanced, so the entry survives unconditionally.
    tlb_.TouchMru();
    return true;
  }
  last_touched_page_ = vpn;
  ++page_touch_counter_;

  // Track the recent page working set: a ring of the last
  // `recent_window_` distinct-page touches, with per-page occurrence
  // counts and last-touch stamps (alive only while the page is in the
  // ring, which bounds the map over arbitrarily long sweeps).
  PageInfo& info = recent_pages_[vpn];
  ++info.count;
  const uint64_t prev_stamp = info.stamp;
  info.stamp = page_touch_counter_;

  ring_[(ring_head_ + ring_size_) & ring_mask_] = vpn;
  ++ring_size_;
  if (ring_size_ > recent_window_) {
    const uint64_t old = ring_[ring_head_ & ring_mask_];
    ++ring_head_;
    --ring_size_;
    // When the window length divides the access pattern's period, the
    // expiring entry is the page just touched — reuse its slot instead of
    // probing again. count >= 2 there (the push above), so no Erase.
    if (old == vpn) {
      --info.count;
    } else {
      PageInfo* old_info = recent_pages_.Find(old);
      if (--old_info->count == 0) recent_pages_.Erase(old);
    }
  }

  const bool resident = tlb_.Access(vpn);
  if (!resident) return false;

  // Co-resident-warp interference: between this warp's two touches of the
  // page, other warps touched ~co_resident times as many pages. If the
  // recent working set fits the TLB, that churn re-touches resident pages
  // and evicts nothing; otherwise the entry survives only a short
  // interval.
  const int co_resident = gpu_.tlb_co_resident_warps;
  if (co_resident <= 0) return true;
  if (recent_pages_.size() <= tlb_.entries()) return true;
  // No stamp within the window means the previous touch is at least a
  // full window (>= 4x the TLB entry count) in the past — never
  // survivable, so the evicted stamp's exact value is irrelevant.
  if (prev_stamp == 0) return false;
  const uint64_t elapsed = page_touch_counter_ - prev_stamp;
  return elapsed * static_cast<uint64_t>(co_resident) <= tlb_.entries();
}

void MemoryModel::Gather(const mem::VirtAddr* addrs, uint32_t mask,
                         uint32_t bytes_per_lane, AccessType type) {
  ++counters_.warp_steps;
  if (mask == 0) return;

  // Collect the distinct lines touched by the active lanes. A lane access
  // can straddle a line boundary, so reserve two slots per lane. Lanes
  // usually access consecutive addresses (partitioned probes, streaming
  // kernels), so detect already-sorted line lists while collecting and
  // skip the sort.
  std::array<uint64_t, 2 * kWarpWidth> lines;
  int n = 0;
  bool sorted = true;
  for (uint32_t m = mask; m != 0; m &= m - 1) {
    const int lane = std::countr_zero(m);
    const mem::VirtAddr addr = addrs[lane];
    const uint64_t first = addr >> line_shift_;
    const uint64_t last = (addr + bytes_per_lane - 1) >> line_shift_;
    if (n > 0 && first < lines[n - 1]) sorted = false;
    lines[n++] = first;
    if (last != first) lines[n++] = last;
  }
  if (!sorted) std::sort(lines.begin(), lines.begin() + n);
  uint64_t prev = ~uint64_t{0};
  for (int i = 0; i < n; ++i) {
    if (lines[i] == prev) continue;
    prev = lines[i];
    TouchLine(lines[i], type, /*random=*/true);
  }
}

void MemoryModel::Stream(mem::VirtAddr base, uint64_t bytes,
                         AccessType type) {
  if (bytes == 0) return;
  if (!observers_.empty()) {
    const bool is_write = type == AccessType::kWrite;
    for (AccessObserver* o : observers_) o->OnStream(base, bytes, is_write);
  }
  const uint64_t line = gpu_.cacheline_bytes;
  const uint64_t first_line = base / line;
  const uint64_t last_line = (base + bytes - 1) / line;
  const uint64_t line_bytes_total = (last_line - first_line + 1) * line;

  const mem::MemKind kind = space_->KindOf(base);
  counters_.memory_transactions += last_line - first_line + 1;
  if (kind == mem::MemKind::kDevice) {
    if (type == AccessType::kRead) {
      counters_.hbm_read_bytes += line_bytes_total;
    } else {
      counters_.hbm_write_bytes += line_bytes_total;
    }
    return;
  }

  // Host stream: touch each covered page in the TLB (a scan touches few
  // pages and is not subject to frequent TLB misses — paper Sec. 4.3.1).
  const uint64_t first_page = base >> host_page_shift_;
  const uint64_t last_page = (base + bytes - 1) >> host_page_shift_;
  for (uint64_t vpn = first_page; vpn <= last_page; ++vpn) {
    if (TlbLookup(vpn)) {
      ++counters_.tlb_hits;
    } else {
      ++counters_.translation_requests;
      page_table_.TranslatePage(vpn, mem::MemKind::kHost);
      if (fault_ != nullptr) fault_->OnTranslation(&counters_);
    }
  }
  if (type == AccessType::kRead) {
    counters_.host_seq_read_bytes += line_bytes_total;
  } else {
    counters_.host_write_bytes += line_bytes_total;
  }
  if (fault_ != nullptr) {
    fault_->OnHostLines(last_line - first_line + 1, gpu_.cacheline_bytes,
                        type == AccessType::kRead, /*random=*/false,
                        &counters_);
  }
}

void MemoryModel::SerialChain(mem::VirtAddr representative_addr,
                              uint64_t n_loads, AccessType type) {
  if (n_loads == 0) return;
  counters_.serial_dependent_loads += n_loads;
  const uint64_t line = gpu_.cacheline_bytes;
  const mem::MemKind kind = space_->KindOf(representative_addr);
  if (kind == mem::MemKind::kDevice) {
    if (type == AccessType::kRead) {
      counters_.hbm_read_bytes += n_loads * line;
    } else {
      counters_.hbm_write_bytes += n_loads * line;
    }
  } else {
    counters_.host_random_read_bytes += n_loads * line;
    if (fault_ != nullptr) {
      fault_->OnHostLines(n_loads, gpu_.cacheline_bytes,
                          type == AccessType::kRead, /*random=*/true,
                          &counters_);
    }
  }
}

Result<mem::Region> MemoryModel::TryReserve(uint64_t bytes,
                                            mem::MemKind kind,
                                            std::string name) {
  if (kind == mem::MemKind::kDevice && fault_ != nullptr &&
      fault_->OnDeviceReserve(&counters_)) {
    return Status::ResourceExhausted(
        "simulated device allocation failure: " + name + " (" +
        std::to_string(bytes) + " bytes)");
  }
  return space_->Reserve(bytes, kind, std::move(name));
}

Status MemoryModel::FaultCheckDeviceAlloc(uint64_t bytes,
                                          const std::string& what) {
  if (fault_ != nullptr && fault_->OnDeviceReserve(&counters_)) {
    return Status::ResourceExhausted(
        "simulated device allocation failure: " + what + " (" +
        std::to_string(bytes) + " bytes)");
  }
  return Status::Ok();
}

void MemoryModel::AddObserver(AccessObserver* observer) {
  if (observer == nullptr) return;
  if (std::find(observers_.begin(), observers_.end(), observer) !=
      observers_.end()) {
    return;
  }
  observers_.push_back(observer);
}

void MemoryModel::RemoveObserver(AccessObserver* observer) {
  observers_.erase(
      std::remove(observers_.begin(), observers_.end(), observer),
      observers_.end());
}

void MemoryModel::SetObserver(AccessObserver* observer) {
  observers_.clear();
  AddObserver(observer);
}

void MemoryModel::ClearHardwareState() {
  l1_.Clear();
  l2_.Clear();
  tlb_.Clear();
  last_line_id_ = kNoLine;
  page_touch_counter_ = 0;
  last_touched_page_ = kNoPage;
  ring_head_ = 0;
  ring_size_ = 0;
  recent_pages_.Clear();
}

}  // namespace gpujoin::sim
