#include "sim/fault.h"

#include <cmath>
#include <string>

namespace gpujoin::sim {

const char* FaultClassName(FaultClass cls) {
  switch (cls) {
    case FaultClass::kTranslationTimeout:
      return "translation_timeout";
    case FaultClass::kRemoteReadError:
      return "remote_read_error";
    case FaultClass::kBandwidthDegradation:
      return "bandwidth_degradation";
    case FaultClass::kAllocationFailure:
      return "allocation_failure";
  }
  return "unknown";
}

FaultConfig FaultConfig::AllClasses(double rate, uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  config.translation_timeout_rate = rate;
  config.remote_read_error_rate = rate;
  config.degradation_episode_rate = rate;
  config.alloc_failure_rate = rate;
  return config;
}

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config), rng_(SplitMix64(config.seed)) {}

void FaultInjector::Reset() {
  rng_ = Xoshiro256(SplitMix64(config_.seed));
  episode_lines_left_ = 0;
  gap_lines_left_ = 0;
  fatal_ = Status::Ok();
}

uint64_t FaultInjector::DrawCount(uint64_t n, double rate) {
  if (rate <= 0 || n == 0) return 0;
  const double expected = static_cast<double>(n) * rate;
  uint64_t count = static_cast<uint64_t>(expected);
  const double remainder = expected - static_cast<double>(count);
  if (remainder > 0 && rng_.NextDouble() < remainder) ++count;
  return count > n ? n : count;
}

uint64_t FaultInjector::DrawGeometricGap(double rate) {
  if (rate >= 1) return 1;
  // Inverse-CDF geometric: gap = ceil(ln(1-U) / ln(1-p)) >= 1.
  const double u = rng_.NextDouble();
  const double gap = std::ceil(std::log1p(-u) / std::log1p(-rate));
  if (gap < 1) return 1;
  if (gap >= 0x1p63) return uint64_t{1} << 62;
  return static_cast<uint64_t>(gap);
}

void FaultInjector::ChargeBackoff(int attempt, CounterSet* counters) {
  const double wait =
      config_.backoff_base * static_cast<double>(uint64_t{1} << attempt);
  counters->fault_backoff_nanos +=
      static_cast<uint64_t>(std::llround(wait * 1e9));
}

void FaultInjector::SetFatal(FaultClass cls, const std::string& what) {
  if (!fatal_.ok()) return;  // keep the first fatal fault
  fatal_ = Status::ResourceExhausted(std::string(FaultClassName(cls)) +
                                     ": " + what);
}

void FaultInjector::OnTranslation(CounterSet* counters) {
  if (!Draw(config_.translation_timeout_rate)) return;
  // The request timed out. Retry with exponential backoff until an
  // attempt goes through or the bounded retry budget is exhausted.
  int attempt = 0;
  for (;;) {
    ++counters->faults_injected;
    ++counters->translation_timeouts;
    if (attempt >= config_.max_retries) {
      SetFatal(FaultClass::kTranslationTimeout,
               "timeout persisted after " +
                   std::to_string(config_.max_retries) + " retries");
      return;
    }
    ++counters->fault_retries;
    // The re-issued request is one more real translation, charged at the
    // interconnect's translation throughput like any other.
    ++counters->translation_requests;
    ChargeBackoff(attempt, counters);
    ++attempt;
    if (!Draw(config_.translation_timeout_rate)) return;
  }
}

void FaultInjector::OnHostLines(uint64_t n_lines, uint32_t line_bytes,
                                bool is_read, bool random,
                                CounterSet* counters) {
  if (n_lines == 0) return;

  // Retryable remote-read errors (reads only; writes are posted and the
  // interconnect retries them transparently below our model granularity).
  if (is_read && config_.remote_read_error_rate > 0) {
    const uint64_t errors = DrawCount(n_lines, config_.remote_read_error_rate);
    if (errors > 0) {
      counters->faults_injected += errors;
      counters->remote_read_errors += errors;
      if (config_.max_retries <= 0) {
        SetFatal(FaultClass::kRemoteReadError,
                 std::to_string(errors) + " unretried read error(s)");
      } else {
        counters->fault_retries += errors;
        // Each error re-transfers its cacheline: same traffic class,
        // charged through the cost model like the original transfer.
        const uint64_t bytes = errors * line_bytes;
        if (random) {
          counters->host_random_read_bytes += bytes;
        } else {
          counters->host_seq_read_bytes += bytes;
        }
        counters->memory_transactions += errors;
        counters->fault_backoff_nanos += errors * static_cast<uint64_t>(
            std::llround(config_.backoff_base * 1e9));
      }
    }
  }

  // Bandwidth-degradation episodes: stretches of host traffic move at a
  // fraction of the link rate (InterconnectSpec::degraded_bandwidth_factor)
  // while the link retrains. The state machine advances in bulk so the
  // per-line hot path stays O(#episodes).
  if (config_.degradation_episode_rate > 0) {
    uint64_t remaining = n_lines;
    while (remaining > 0) {
      if (episode_lines_left_ > 0) {
        const uint64_t take =
            remaining < episode_lines_left_ ? remaining : episode_lines_left_;
        episode_lines_left_ -= take;
        remaining -= take;
        counters->degraded_host_bytes += take * line_bytes;
        continue;
      }
      if (gap_lines_left_ == 0) {
        gap_lines_left_ = DrawGeometricGap(config_.degradation_episode_rate);
      }
      const uint64_t take =
          remaining < gap_lines_left_ ? remaining : gap_lines_left_;
      gap_lines_left_ -= take;
      remaining -= take;
      if (gap_lines_left_ == 0) {
        ++counters->faults_injected;
        ++counters->degradation_episodes;
        episode_lines_left_ = config_.degradation_episode_lines;
      }
    }
  }
}

bool FaultInjector::OnDeviceReserve(CounterSet* counters) {
  if (!Draw(config_.alloc_failure_rate)) return false;
  ++counters->faults_injected;
  ++counters->alloc_faults;
  return true;
}

}  // namespace gpujoin::sim
