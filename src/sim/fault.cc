#include "sim/fault.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace gpujoin::sim {

const char* FaultClassName(FaultClass cls) {
  switch (cls) {
    case FaultClass::kTranslationTimeout:
      return "translation_timeout";
    case FaultClass::kRemoteReadError:
      return "remote_read_error";
    case FaultClass::kBandwidthDegradation:
      return "bandwidth_degradation";
    case FaultClass::kAllocationFailure:
      return "allocation_failure";
  }
  return "unknown";
}

FaultConfig FaultConfig::AllClasses(double rate, uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  config.translation_timeout_rate = rate;
  config.remote_read_error_rate = rate;
  config.degradation_episode_rate = rate;
  config.alloc_failure_rate = rate;
  return config;
}

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config), rng_(SplitMix64(config.seed)) {}

void FaultInjector::Reset() {
  rng_ = Xoshiro256(SplitMix64(config_.seed));
  episode_lines_left_ = 0;
  gap_lines_left_ = 0;
  fatal_ = Status::Ok();
}

uint64_t FaultInjector::DrawCount(uint64_t n, double rate) {
  if (rate <= 0 || n == 0) return 0;
  const double expected = static_cast<double>(n) * rate;
  uint64_t count = static_cast<uint64_t>(expected);
  const double remainder = expected - static_cast<double>(count);
  if (remainder > 0 && rng_.NextDouble() < remainder) ++count;
  return count > n ? n : count;
}

uint64_t FaultInjector::DrawGeometricGap(double rate) {
  if (rate >= 1) return 1;
  // Inverse-CDF geometric: gap = ceil(ln(1-U) / ln(1-p)) >= 1.
  const double u = rng_.NextDouble();
  const double gap = std::ceil(std::log1p(-u) / std::log1p(-rate));
  if (gap < 1) return 1;
  if (gap >= 0x1p63) return uint64_t{1} << 62;
  return static_cast<uint64_t>(gap);
}

void FaultInjector::ChargeBackoff(int attempt, CounterSet* counters) {
  const double wait =
      config_.backoff_base * static_cast<double>(uint64_t{1} << attempt);
  counters->fault_backoff_nanos +=
      static_cast<uint64_t>(std::llround(wait * 1e9));
}

void FaultInjector::SetFatal(FaultClass cls, const std::string& what) {
  if (!fatal_.ok()) return;  // keep the first fatal fault
  fatal_ = Status::ResourceExhausted(std::string(FaultClassName(cls)) +
                                     ": " + what);
}

void FaultInjector::OnTranslation(CounterSet* counters) {
  if (!Draw(config_.translation_timeout_rate)) return;
  // The request timed out. Retry with exponential backoff until an
  // attempt goes through or the bounded retry budget is exhausted.
  int attempt = 0;
  for (;;) {
    ++counters->faults_injected;
    ++counters->translation_timeouts;
    if (attempt >= config_.max_retries) {
      SetFatal(FaultClass::kTranslationTimeout,
               "timeout persisted after " +
                   std::to_string(config_.max_retries) + " retries");
      return;
    }
    ++counters->fault_retries;
    // The re-issued request is one more real translation, charged at the
    // interconnect's translation throughput like any other.
    ++counters->translation_requests;
    ChargeBackoff(attempt, counters);
    ++attempt;
    if (!Draw(config_.translation_timeout_rate)) return;
  }
}

void FaultInjector::OnHostLines(uint64_t n_lines, uint32_t line_bytes,
                                bool is_read, bool random,
                                CounterSet* counters) {
  if (n_lines == 0) return;

  // Retryable remote-read errors (reads only; writes are posted and the
  // interconnect retries them transparently below our model granularity).
  if (is_read && config_.remote_read_error_rate > 0) {
    const uint64_t errors = DrawCount(n_lines, config_.remote_read_error_rate);
    if (errors > 0) {
      counters->faults_injected += errors;
      counters->remote_read_errors += errors;
      if (config_.max_retries <= 0) {
        SetFatal(FaultClass::kRemoteReadError,
                 std::to_string(errors) + " unretried read error(s)");
      } else {
        counters->fault_retries += errors;
        // Each error re-transfers its cacheline: same traffic class,
        // charged through the cost model like the original transfer.
        const uint64_t bytes = errors * line_bytes;
        if (random) {
          counters->host_random_read_bytes += bytes;
        } else {
          counters->host_seq_read_bytes += bytes;
        }
        counters->memory_transactions += errors;
        counters->fault_backoff_nanos += errors * static_cast<uint64_t>(
            std::llround(config_.backoff_base * 1e9));
      }
    }
  }

  // Bandwidth-degradation episodes: stretches of host traffic move at a
  // fraction of the link rate (InterconnectSpec::degraded_bandwidth_factor)
  // while the link retrains. The state machine advances in bulk so the
  // per-line hot path stays O(#episodes).
  if (config_.degradation_episode_rate > 0) {
    uint64_t remaining = n_lines;
    while (remaining > 0) {
      if (episode_lines_left_ > 0) {
        const uint64_t take =
            remaining < episode_lines_left_ ? remaining : episode_lines_left_;
        episode_lines_left_ -= take;
        remaining -= take;
        counters->degraded_host_bytes += take * line_bytes;
        continue;
      }
      if (gap_lines_left_ == 0) {
        gap_lines_left_ = DrawGeometricGap(config_.degradation_episode_rate);
      }
      const uint64_t take =
          remaining < gap_lines_left_ ? remaining : gap_lines_left_;
      gap_lines_left_ -= take;
      remaining -= take;
      if (gap_lines_left_ == 0) {
        ++counters->faults_injected;
        ++counters->degradation_episodes;
        episode_lines_left_ = config_.degradation_episode_lines;
      }
    }
  }
}

bool FaultInjector::OnDeviceReserve(CounterSet* counters) {
  if (!Draw(config_.alloc_failure_rate)) return false;
  ++counters->faults_injected;
  ++counters->alloc_faults;
  return true;
}

// --------------------------------------------------------------------
// Device-level faults.

const char* DeviceFaultClassName(DeviceFaultClass cls) {
  switch (cls) {
    case DeviceFaultClass::kShardCrash:
      return "shard_crash";
    case DeviceFaultClass::kShardStuck:
      return "shard_stuck";
    case DeviceFaultClass::kShardSlow:
      return "shard_slow";
    case DeviceFaultClass::kLinkDown:
      return "link_down";
  }
  return "unknown";
}

Status DeviceFaultConfig::Validate(int num_shards) const {
  for (size_t i = 0; i < events.size(); ++i) {
    const DeviceFaultEvent& e = events[i];
    const std::string where = "device fault event " + std::to_string(i);
    if (e.shard < 0 || e.shard >= num_shards) {
      return Status::InvalidArgument(
          where + ": shard " + std::to_string(e.shard) + " outside [0, " +
          std::to_string(num_shards) + ")");
    }
    if (!(e.at_seconds >= 0) || !std::isfinite(e.at_seconds)) {
      return Status::InvalidArgument(where +
                                     ": at_seconds must be finite and >= 0");
    }
    if (e.cls == DeviceFaultClass::kShardSlow && !(e.slow_factor >= 1)) {
      return Status::InvalidArgument(where + ": slow_factor must be >= 1");
    }
    if (std::isnan(e.duration_seconds)) {
      return Status::InvalidArgument(where + ": duration_seconds is NaN");
    }
  }
  if (random_slow_rate < 0 || !std::isfinite(random_slow_rate)) {
    return Status::InvalidArgument(
        "device fault config: random_slow_rate must be finite and >= 0");
  }
  if (random_slow_rate > 0) {
    if (!(random_slow_duration > 0)) {
      return Status::InvalidArgument(
          "device fault config: random_slow_duration must be > 0");
    }
    if (!(random_slow_factor >= 1)) {
      return Status::InvalidArgument(
          "device fault config: random_slow_factor must be >= 1");
    }
    if (random_horizon_seconds < 0 ||
        !std::isfinite(random_horizon_seconds)) {
      return Status::InvalidArgument(
          "device fault config: random_horizon_seconds must be finite "
          "and >= 0");
    }
  }
  return Status::Ok();
}

DeviceFaultTimeline::DeviceFaultTimeline(const DeviceFaultConfig& config,
                                         int num_shards)
    : enabled_(config.enabled()),
      episodes_(static_cast<size_t>(num_shards < 0 ? 0 : num_shards)) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (const DeviceFaultEvent& e : config.events) {
    if (e.shard < 0 || e.shard >= num_shards) continue;  // Validate() caught
    Episode ep;
    ep.cls = e.cls;
    ep.begin = e.at_seconds;
    switch (e.cls) {
      case DeviceFaultClass::kShardCrash:
      case DeviceFaultClass::kShardStuck:
        ep.end = kInf;
        break;
      case DeviceFaultClass::kShardSlow:
        ep.end = e.duration_seconds > 0 ? e.at_seconds + e.duration_seconds
                                        : kInf;
        ep.factor = e.slow_factor;
        break;
      case DeviceFaultClass::kLinkDown:
        // A link that never comes back is indistinguishable from a dead
        // shard: the structures are unreachable forever.
        ep.end = e.duration_seconds > 0 ? e.at_seconds + e.duration_seconds
                                        : kInf;
        break;
    }
    episodes_[static_cast<size_t>(e.shard)].push_back(ep);
  }

  // Seeded random slow episodes: one independent substream per shard so
  // the schedule for shard k does not depend on num_shards' other draws.
  if (config.random_slow_rate > 0 && config.random_horizon_seconds > 0) {
    for (int shard = 0; shard < num_shards; ++shard) {
      Xoshiro256 rng(SplitMix64(config.seed +
                                uint64_t{0x9E3779B97F4A7C15} *
                                    static_cast<uint64_t>(shard + 1)));
      double t = 0;
      for (;;) {
        // Exponential inter-arrival gap at `random_slow_rate` per second.
        const double u = rng.NextDouble();
        t += -std::log1p(-u) / config.random_slow_rate;
        if (t >= config.random_horizon_seconds) break;
        const double v = rng.NextDouble();
        const double dur =
            -std::log1p(-v) * config.random_slow_duration;
        Episode ep;
        ep.cls = DeviceFaultClass::kShardSlow;
        ep.begin = t;
        ep.end = t + dur;
        ep.factor = config.random_slow_factor;
        episodes_[static_cast<size_t>(shard)].push_back(ep);
        t = ep.end;
      }
    }
  }

  for (auto& list : episodes_) {
    std::sort(list.begin(), list.end(),
              [](const Episode& a, const Episode& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                return static_cast<int>(a.cls) < static_cast<int>(b.cls);
              });
  }
}

namespace {

bool IsTerminal(const DeviceFaultTimeline::Episode& ep) {
  return ep.cls == DeviceFaultClass::kShardCrash ||
         ep.cls == DeviceFaultClass::kShardStuck ||
         (ep.cls == DeviceFaultClass::kLinkDown &&
          ep.end == std::numeric_limits<double>::infinity());
}

}  // namespace

std::optional<DeviceFaultTimeline::Episode> DeviceFaultTimeline::TerminalAt(
    int shard, double t) const {
  if (shard < 0 || static_cast<size_t>(shard) >= episodes_.size()) {
    return std::nullopt;
  }
  for (const Episode& ep : episodes_[static_cast<size_t>(shard)]) {
    if (ep.begin > t) break;  // sorted by begin
    if (IsTerminal(ep)) return ep;
  }
  return std::nullopt;
}

std::optional<DeviceFaultTimeline::Episode> DeviceFaultTimeline::TerminalIn(
    int shard, double t0, double t1) const {
  if (shard < 0 || static_cast<size_t>(shard) >= episodes_.size()) {
    return std::nullopt;
  }
  for (const Episode& ep : episodes_[static_cast<size_t>(shard)]) {
    if (ep.begin >= t1) break;
    if (ep.begin >= t0 && IsTerminal(ep)) return ep;
  }
  return std::nullopt;
}

double DeviceFaultTimeline::DelaySeconds(int shard, double t,
                                         double busy) const {
  if (shard < 0 || static_cast<size_t>(shard) >= episodes_.size() ||
      busy <= 0) {
    return 0;
  }
  const double t1 = t + busy;
  double delay = 0;
  for (const Episode& ep : episodes_[static_cast<size_t>(shard)]) {
    if (ep.begin >= t1) break;
    if (IsTerminal(ep)) continue;  // terminal faults handled by the caller
    const double lo = ep.begin > t ? ep.begin : t;
    const double hi = ep.end < t1 ? ep.end : t1;
    if (hi <= lo) continue;
    const double overlap = hi - lo;
    if (ep.cls == DeviceFaultClass::kShardSlow) {
      delay += overlap * (ep.factor - 1.0);
    } else if (ep.cls == DeviceFaultClass::kLinkDown) {
      // Transient link-down: the device stalls for the outage overlap.
      delay += overlap;
    }
  }
  return delay;
}

}  // namespace gpujoin::sim
