#ifndef GPUJOIN_SIM_MEMORY_MODEL_H_
#define GPUJOIN_SIM_MEMORY_MODEL_H_

#include <cstdint>
#include <vector>

#include "mem/address_space.h"
#include "mem/page_table.h"
#include "sim/cache.h"
#include "sim/counters.h"
#include "sim/fault.h"
#include "sim/specs.h"
#include "sim/tlb.h"
#include "sim/trace.h"
#include "util/flat_map.h"
#include "util/status.h"

namespace gpujoin::sim {

class PhaseSink;

enum class AccessType : uint8_t { kRead, kWrite };

// The GPU's view of memory: an L1/L2 cache hierarchy in front of device
// memory (HBM) and, across the interconnect, CPU memory. Every simulated
// memory operation flows through here and updates the CounterSet that the
// cost model later converts into time.
//
// Modeling decisions (see DESIGN.md Sec. 2):
//  * Transactions are cacheline-granular, like NVLink remote accesses.
//  * The GPU TLB is consulted for host-bound transactions that miss the
//    caches (the hardware translates at the memory-partition level);
//    a TLB miss is one "address translation request" to the CPU IOMMU —
//    the event the paper measures in Fig. 4.
//  * Gather() models one SIMT memory instruction: the active lanes'
//    addresses are coalesced, and each distinct line is one transaction.
//  * Stream() models bulk sequential transfers (table scans, result
//    materialization). Streams bypass the caches (they would only thrash
//    them) but do touch the TLB for host pages.
//
// This is the simulator's hot path — every figure sweep funnels billions
// of line touches through TouchLine/TlbLookup — so the interference
// bookkeeping uses a fixed-capacity ring plus an open-addressing flat map
// (bounded by the recent window), and repeated same-line / same-page
// touches take memoized fast paths. All of it is bit-for-bit equivalent
// to the straightforward implementation: identical CounterSet values.
class MemoryModel {
 public:
  static constexpr int kWarpWidth = 32;

  MemoryModel(mem::AddressSpace* space, const GpuSpec& gpu);

  MemoryModel(const MemoryModel&) = delete;
  MemoryModel& operator=(const MemoryModel&) = delete;

  // One coalesced SIMT memory instruction. `mask` bit i set means lane i
  // accesses `bytes_per_lane` bytes at addrs[i]. Gathers are charged at
  // the interconnect's random-access rate when they leave the GPU.
  void Gather(const mem::VirtAddr* addrs, uint32_t mask,
              uint32_t bytes_per_lane, AccessType type);

  // Single-lane equivalent of Gather() with one active lane: same
  // counters, without the lane-collection loop.
  void Access(mem::VirtAddr addr, uint32_t bytes, AccessType type) {
    ++counters_.warp_steps;
    const uint64_t first = addr >> line_shift_;
    const uint64_t last = (addr + bytes - 1) >> line_shift_;
    TouchLine(first, type, /*random=*/true);
    if (last != first) TouchLine(last, type, /*random=*/true);
  }

  // Bulk sequential transfer of [base, base+bytes).
  void Stream(mem::VirtAddr base, uint64_t bytes, AccessType type);

  // A chain of `n_loads` serially dependent loads by a single thread
  // (e.g. walking a bucket list end to end). Charged latency-bound in the
  // cost model on top of the line traffic.
  void SerialChain(mem::VirtAddr representative_addr, uint64_t n_loads,
                   AccessType type);

  // Compute accounting: `n` simulated warp instructions.
  void AddWarpSteps(uint64_t n) { counters_.warp_steps += n; }

  void AddKernelLaunch() { ++counters_.kernel_launches; }

  // Observer fan-out: every attached observer (e.g. a TraceRecorder and a
  // PhaseTimeline at the same time) sees every transaction and stream.
  // Observers are not owned; attach order is notification order. Adding a
  // nullptr or an already-attached observer is a no-op.
  void AddObserver(AccessObserver* observer);
  void RemoveObserver(AccessObserver* observer);
  // Single-observer convenience (pre-fan-out API): detaches every
  // observer, then attaches `observer` (nullptr just detaches all).
  void SetObserver(AccessObserver* observer);
  size_t observer_count() const { return observers_.size(); }

  // Attaches the receiver of pipeline phase marks (see sim/phase.h); pass
  // nullptr to detach. Not owned. Kernels read this via phase_sink() and
  // bracket their stages with PhaseScope/WindowScope, which are no-ops
  // when detached — counters are never touched by phase marks either way.
  void SetPhaseSink(PhaseSink* sink) { phase_sink_ = sink; }
  PhaseSink* phase_sink() const { return phase_sink_; }

  // Attaches a fault injector consulted on the interconnect path
  // (translations, host-bound lines) and on device reservations; pass
  // nullptr to detach. Not owned. With no injector attached every hook is
  // a single branch and all counters are bit-identical to a build without
  // the fault layer.
  void SetFaultInjector(FaultInjector* fault) { fault_ = fault; }
  FaultInjector* fault_injector() const { return fault_; }

  // First unrecoverable injected fault, or OK. The hot paths (TouchLine,
  // Stream) are void, so fatal faults latch on the injector; kernels check
  // here at their boundaries and propagate the Status.
  Status fault_status() const {
    return fault_ == nullptr ? Status::Ok() : fault_->fatal_status();
  }

  // Fallible reservation: consults the injector for device-kind requests
  // (simulated GPU allocation failure), otherwise exactly
  // space().Reserve() — same bump-allocated addresses, so fault-free runs
  // are unchanged.
  Result<mem::Region> TryReserve(uint64_t bytes, mem::MemKind kind,
                                 std::string name);

  // Injector check for device allocations whose Region is managed by the
  // caller (e.g. reusable per-window buffers): fails like TryReserve but
  // reserves nothing.
  Status FaultCheckDeviceAlloc(uint64_t bytes, const std::string& what);

  // Analytic traffic accounting, for components modeled in closed form
  // (e.g. SWWC partition passes that are perfectly bandwidth-bound).
  void AddHbmTraffic(uint64_t read_bytes, uint64_t write_bytes) {
    counters_.hbm_read_bytes += read_bytes;
    counters_.hbm_write_bytes += write_bytes;
  }

  const CounterSet& counters() const { return counters_; }
  CounterSet TakeSnapshot() const { return counters_; }

  // Drops cache and TLB state (not counters): use between independent
  // experiment repetitions.
  void ClearHardwareState();

  // Evicts cold L1/L2 contents. The windowed INLJ uses this at window
  // boundaries: a real window's churn (millions of line touches) evicts
  // everything a previous window loaded except constantly re-touched hot
  // lines (radix table, index top levels), which the sampled simulation
  // would otherwise understate.
  void FlushCaches() {
    l1_.FlushCold(kHotLineTouches);
    l2_.FlushCold(kHotLineTouches);
    // The flush may have evicted the memoized line.
    last_line_id_ = kNoLine;
  }

  const Cache& l1() const { return l1_; }
  const Cache& l2() const { return l2_; }
  const Tlb& tlb() const { return tlb_; }
  mem::AddressSpace& space() { return *space_; }
  const GpuSpec& gpu_spec() const { return gpu_; }
  uint32_t line_bytes() const { return gpu_.cacheline_bytes; }

  // Introspection for tests: the interference window (in distinct page
  // touches) and the bounded recent-page map (ISSUE: the old per-page
  // stamp map grew without limit over a sweep).
  uint64_t recent_window_pages() const { return recent_window_; }
  size_t recent_page_entries() const { return recent_pages_.size(); }

 private:
  // Lines touched at least this often within a window survive the
  // window-boundary flush.
  static constexpr uint64_t kHotLineTouches = 2;

  static constexpr uint64_t kNoLine = ~uint64_t{0};
  static constexpr uint64_t kNoPage = ~uint64_t{0};

  // Per-page interference state, alive exactly while the page sits in
  // the recent ring. `stamp` is the page-touch-counter value of the
  // page's previous touch; 0 means "no touch within the window", which
  // the survival test below treats as ancient.
  struct PageInfo {
    int32_t count = 0;
    uint64_t stamp = 0;
  };

  // Processes one line-granular transaction; returns the level it was
  // served from (0 = L1, 1 = L2, 2 = memory).
  void TouchLine(uint64_t line_id, AccessType type, bool random);

  // Consults the TLB for host page `vpn`, applying the co-resident-warp
  // interference model (see GpuSpec::tlb_co_resident_warps): a resident
  // translation only survives between two touches if the churn other
  // warps generate in that interval fits the TLB — unless the recent
  // page working set fits entirely, in which case the churn re-touches
  // the same resident pages and evicts nothing.
  bool TlbLookup(uint64_t vpn);

  mem::AddressSpace* space_;
  GpuSpec gpu_;
  // Line size and host page size are powers of two; the hot path shifts
  // instead of dividing by these runtime values.
  uint32_t line_shift_;
  uint32_t host_page_shift_;
  mem::PageTable page_table_;
  Cache l1_;
  Cache l2_;
  Tlb tlb_;
  // Notifies all attached observers. Callers guard on observers_.empty()
  // so the detached hot path stays a single branch.
  void NotifyTransaction(mem::VirtAddr addr, ServiceLevel level,
                         bool is_write) {
    for (AccessObserver* o : observers_) o->OnTransaction(addr, level, is_write);
  }

  CounterSet counters_;
  std::vector<AccessObserver*> observers_;
  PhaseSink* phase_sink_ = nullptr;
  FaultInjector* fault_ = nullptr;

  // Same-line fast path: the line of the previous TouchLine is always
  // L1-resident (a touch either hits L1 or installs the line), so a
  // repeated touch is an L1 hit served via Cache::TouchMru. Reset
  // whenever anything else can change L1 contents (flush/clear).
  uint64_t last_line_id_ = kNoLine;

  // Interference state: a fixed-capacity power-of-two ring of recent
  // host-page touches approximates the recent working set; recent_pages_
  // carries each ring-resident page's occurrence count and last-touch
  // stamp, and is bounded by the window size (pages are evicted as their
  // last ring occurrence falls out).
  uint64_t recent_window_ = 0;
  uint64_t page_touch_counter_ = 0;
  uint64_t last_touched_page_ = kNoPage;
  std::vector<uint64_t> ring_;
  uint64_t ring_mask_ = 0;
  uint64_t ring_head_ = 0;  // index of the oldest entry
  uint64_t ring_size_ = 0;
  util::FlatMap64<PageInfo> recent_pages_;
};

}  // namespace gpujoin::sim

#endif  // GPUJOIN_SIM_MEMORY_MODEL_H_
