#ifndef GPUJOIN_SIM_GPU_H_
#define GPUJOIN_SIM_GPU_H_

#include <algorithm>
#include <string>
#include <utility>

#include "mem/address_space.h"
#include "sim/cost_model.h"
#include "sim/counters.h"
#include "sim/memory_model.h"
#include "sim/specs.h"

namespace gpujoin::sim {

// The counters accumulated by one kernel execution, plus its name. Time is
// derived on demand by the platform's CostModel; counters of a sampled run
// can be scaled up to the full workload first.
struct KernelRun {
  std::string name;
  CounterSet counters;

  // Scales the per-tuple work counters by `factor` (used to extrapolate a
  // sampled run to the full probe size; launch counts stay fixed).
  KernelRun Scaled(double factor) const {
    return KernelRun{name, counters.Scaled(factor)};
  }

  KernelRun& Merge(const KernelRun& other) {
    counters += other.counters;
    return *this;
  }
};

// One warp of up to 32 SIMT lanes processing consecutive items. Kernels
// are written per-warp: lanes execute in lock-step and every memory
// instruction is issued through Gather(), which coalesces the active
// lanes' addresses into line transactions — the mechanism that makes
// partitioned (neighbouring) lookup keys cheaper than random ones.
class Warp {
 public:
  static constexpr int kWidth = MemoryModel::kWarpWidth;

  Warp(MemoryModel* memory, uint64_t base_item, int lane_count)
      : memory_(memory), base_item_(base_item), lane_count_(lane_count) {}

  int lane_count() const { return lane_count_; }
  uint64_t item(int lane) const { return base_item_ + lane; }
  uint64_t base_item() const { return base_item_; }

  // Mask with bits 0..lane_count-1 set.
  uint32_t full_mask() const {
    return lane_count_ == kWidth ? ~0u : ((1u << lane_count_) - 1);
  }

  // One SIMT load/store: lane i (if mask bit i) accesses addrs[i].
  void Gather(const mem::VirtAddr* addrs, uint32_t mask, uint32_t bytes,
              AccessType type = AccessType::kRead) {
    memory_->Gather(addrs, mask, bytes, type);
  }

  // Compute-only instructions (hashing, comparisons between loads).
  void AddSteps(uint64_t n) { memory_->AddWarpSteps(n); }

  MemoryModel& memory() { return *memory_; }

 private:
  MemoryModel* memory_;
  uint64_t base_item_;
  int lane_count_;
};

// The simulated GPU device: a memory model plus the platform cost model.
// Kernels run warp-by-warp; the executor is sequential but the cost model
// charges resources as if warps overlapped (throughput-oriented), which is
// how real GPU kernels behave for these memory-bound workloads.
class Gpu {
 public:
  Gpu(mem::AddressSpace* space, PlatformSpec platform)
      : platform_(std::move(platform)),
        memory_(space, platform_.gpu),
        cost_model_(platform_) {}

  Gpu(const Gpu&) = delete;
  Gpu& operator=(const Gpu&) = delete;

  // Runs `fn(Warp&)` over `n_items` items in warps of 32 and returns the
  // counters the kernel accumulated.
  template <typename Fn>
  KernelRun RunKernel(std::string name, uint64_t n_items, Fn&& fn) {
    const CounterSet before = memory_.TakeSnapshot();
    memory_.AddKernelLaunch();
    for (uint64_t base = 0; base < n_items; base += Warp::kWidth) {
      const int count = static_cast<int>(
          std::min<uint64_t>(Warp::kWidth, n_items - base));
      Warp warp(&memory_, base, count);
      fn(warp);
    }
    return KernelRun{std::move(name), memory_.TakeSnapshot() - before};
  }

  // Runs a non-item-parallel body with direct memory-model access (bulk
  // transfers, analytic components).
  template <typename Fn>
  KernelRun RunRaw(std::string name, Fn&& fn) {
    const CounterSet before = memory_.TakeSnapshot();
    memory_.AddKernelLaunch();
    fn(memory_);
    return KernelRun{std::move(name), memory_.TakeSnapshot() - before};
  }

  double TimeOf(const KernelRun& run) const {
    return cost_model_.Seconds(run.counters);
  }
  TimeBreakdown BreakdownOf(const KernelRun& run) const {
    return cost_model_.Breakdown(run.counters);
  }

  MemoryModel& memory() { return memory_; }
  const PlatformSpec& platform() const { return platform_; }
  const CostModel& cost_model() const { return cost_model_; }

 private:
  PlatformSpec platform_;
  MemoryModel memory_;
  CostModel cost_model_;
};

}  // namespace gpujoin::sim

#endif  // GPUJOIN_SIM_GPU_H_
