#ifndef GPUJOIN_SIM_RUN_RESULT_H_
#define GPUJOIN_SIM_RUN_RESULT_H_

#include <string>
#include <utility>
#include <vector>

#include "sim/counters.h"
#include "sim/phase.h"

namespace gpujoin::sim {

// The outcome of one simulated end-to-end operator run (a full "query" in
// the paper's sense), extrapolated to the full workload size. Both the
// hash join baseline and the INLJ variants report this shape, so the
// bench binaries can print the paper's figures uniformly.
struct RunResult {
  std::string label;
  double seconds = 0;
  CounterSet counters;        // full-scale hardware events
  uint64_t probe_tuples = 0;  // logical probe-side size (|S| or |R|)
  uint64_t result_tuples = 0;

  // Graceful-degradation outcomes (all zero/false on a clean run; see
  // sim/fault.h and core::RecoveryPolicy). Extrapolated to full scale
  // like the counters.
  uint64_t spilled_tuples = 0;    // bucket-overflow tuples spill-chained
  uint64_t spill_buckets = 0;
  uint64_t degraded_windows = 0;  // windows shrunk after alloc failure
  uint64_t fallback_windows = 0;  // windows joined unpartitioned
  bool result_buffer_on_host = false;  // result spilled to CPU memory

  bool degraded() const {
    return spilled_tuples > 0 || degraded_windows > 0 ||
           fallback_windows > 0 || result_buffer_on_host;
  }

  // Queries per second — the paper's throughput metric (Sec. 3.2).
  double qps() const { return seconds > 0 ? 1.0 / seconds : 0; }

  // Fig. 4's metric: address translation requests per lookup key.
  double translations_per_key() const {
    return probe_tuples > 0 ? static_cast<double>(
                                  counters.translation_requests) /
                                  static_cast<double>(probe_tuples)
                            : 0;
  }

  // Named stage times (build/partition/join/...), for breakdowns.
  std::vector<std::pair<std::string, double>> stages;

  void AddStage(std::string name, double t) {
    stages.emplace_back(std::move(name), t);
  }

  // Per-stage profile recorded by an attached obs::PhaseTimeline (empty
  // when the experiment ran unobserved). Spans are at simulated-sample
  // scale, not extrapolated — see sim/phase.h.
  std::vector<PhaseSpan> phase_spans;
};

}  // namespace gpujoin::sim

#endif  // GPUJOIN_SIM_RUN_RESULT_H_
