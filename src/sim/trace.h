#ifndef GPUJOIN_SIM_TRACE_H_
#define GPUJOIN_SIM_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mem/address_space.h"

namespace gpujoin::sim {

// Where a transaction was served from.
enum class ServiceLevel : uint8_t {
  kL1 = 0,
  kL2 = 1,
  kHbm = 2,
  kInterconnect = 3,
};

const char* ServiceLevelName(ServiceLevel level);

// Observer interface for memory transactions. Attach to a MemoryModel to
// see every line-granular transaction (gathers) and bulk stream as it
// happens. Observing costs one branch per transaction when attached.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  // One line-granular transaction at `addr`, served from `level`.
  virtual void OnTransaction(mem::VirtAddr addr, ServiceLevel level,
                             bool is_write) = 0;

  // One bulk stream of `bytes` starting at `addr`.
  virtual void OnStream(mem::VirtAddr addr, uint64_t bytes,
                        bool is_write) = 0;
};

// Aggregates transactions per named address-space region — the "which
// data structure causes which traffic" view used to debug and explain
// experiment results (e.g. how much of an INLJ's remote traffic is index
// nodes vs base data vs probe stream).
class TraceRecorder : public AccessObserver {
 public:
  struct RegionStats {
    uint64_t transactions = 0;
    uint64_t l1_hits = 0;
    uint64_t l2_hits = 0;
    uint64_t memory_transactions = 0;  // served by HBM or interconnect
    uint64_t stream_bytes = 0;
    uint64_t writes = 0;
  };

  explicit TraceRecorder(const mem::AddressSpace* space) : space_(space) {}

  void OnTransaction(mem::VirtAddr addr, ServiceLevel level,
                     bool is_write) override;
  void OnStream(mem::VirtAddr addr, uint64_t bytes, bool is_write) override;

  // Stats for a region by name ("" aggregates unknown addresses).
  const RegionStats& ForRegion(const std::string& name) const;
  const std::map<std::string, RegionStats>& by_region() const {
    return by_region_;
  }

  // Human-readable summary, one line per region, sorted by traffic.
  std::string Summary() const;

  void Reset() { by_region_.clear(); }

 private:
  RegionStats& Resolve(mem::VirtAddr addr);

  const mem::AddressSpace* space_;
  std::map<std::string, RegionStats> by_region_;
};

}  // namespace gpujoin::sim

#endif  // GPUJOIN_SIM_TRACE_H_
