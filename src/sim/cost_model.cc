#include "sim/cost_model.h"

#include <sstream>

#include "util/units.h"

namespace gpujoin::sim {

std::string TimeBreakdown::ToString() const {
  std::ostringstream os;
  os << "total=" << FormatSeconds(total())
     << " (transfer=" << FormatSeconds(transfer)
     << ", translation=" << FormatSeconds(translation)
     << ", hbm=" << FormatSeconds(hbm)
     << ", compute=" << FormatSeconds(compute)
     << ", serial=" << FormatSeconds(serial)
     << ", launch=" << FormatSeconds(launch);
  if (fault > 0) os << ", fault=" << FormatSeconds(fault);
  os << ")";
  return os.str();
}

TimeBreakdown CostModel::Breakdown(const CounterSet& c) const {
  const GpuSpec& gpu = platform_.gpu;
  const InterconnectSpec& ic = platform_.interconnect;

  TimeBreakdown b;
  b.transfer =
      static_cast<double>(c.host_random_read_bytes) / ic.random_bandwidth +
      static_cast<double>(c.host_seq_read_bytes) / ic.seq_bandwidth +
      static_cast<double>(c.host_write_bytes) / ic.seq_bandwidth;
  b.translation = static_cast<double>(c.translation_requests) /
                  ic.translation_throughput();
  b.hbm = static_cast<double>(c.hbm_bytes()) / gpu.hbm_bandwidth;
  b.compute =
      static_cast<double>(c.warp_steps) / gpu.warp_step_throughput;
  b.serial = static_cast<double>(c.serial_dependent_loads) *
             gpu.dependent_load_latency;
  b.launch = static_cast<double>(c.kernel_launches) *
             gpu.kernel_launch_overhead;
  b.fault = static_cast<double>(c.fault_backoff_nanos) * 1e-9;
  if (c.degraded_host_bytes > 0) {
    // Bytes moved during a degradation episode crossed at a fraction of
    // the nominal rate; their nominal cost is already in `transfer`, so
    // charge only the shortfall. Degraded stretches span mixed traffic;
    // the nominal random rate is the conservative reference.
    const double factor = ic.degraded_bandwidth_factor;
    if (factor > 0 && factor < 1) {
      b.fault += static_cast<double>(c.degraded_host_bytes) *
                 (1.0 / (ic.random_bandwidth * factor) -
                  1.0 / ic.random_bandwidth);
    }
  }
  return b;
}

double CostModel::HostStreamSeconds(uint64_t read_bytes,
                                    uint64_t write_bytes) const {
  CounterSet c;
  c.host_seq_read_bytes = read_bytes;
  c.host_write_bytes = write_bytes;
  return Seconds(c);
}

double CostModel::HostLookupSeconds(uint64_t lookups,
                                    uint32_t depth_lines) const {
  if (lookups == 0 || depth_lines == 0) return 0;
  CounterSet c;
  const uint64_t lines = lookups * uint64_t{depth_lines};
  c.host_random_read_bytes = lines * platform_.gpu.cacheline_bytes;
  c.memory_transactions = lines;
  // Probes of one batch overlap; the descent within a probe does not.
  c.serial_dependent_loads = depth_lines;
  return Seconds(c);
}

double CostModel::CacheServeSeconds(uint64_t result_bytes,
                                    uint32_t probe_depth_lines) const {
  CounterSet c;
  c.host_seq_read_bytes = result_bytes;
  const uint64_t lines = probe_depth_lines;
  c.host_random_read_bytes = lines * platform_.gpu.cacheline_bytes;
  c.memory_transactions = lines;
  c.serial_dependent_loads = lines;
  return Seconds(c);
}

double CostModel::CacheInstallSeconds(uint64_t result_bytes,
                                      uint32_t probe_depth_lines) const {
  CounterSet c;
  c.host_write_bytes = result_bytes;
  const uint64_t lines = probe_depth_lines;
  c.host_random_read_bytes = lines * platform_.gpu.cacheline_bytes;
  c.memory_transactions = lines;
  c.serial_dependent_loads = lines;
  return Seconds(c);
}

}  // namespace gpujoin::sim
