#include "sim/tlb.h"

#include "util/check.h"

namespace gpujoin::sim {

namespace {

uint64_t ComputeEntries(uint64_t coverage_bytes, uint64_t page_size) {
  GPUJOIN_CHECK(page_size > 0 && bits::IsPowerOfTwo(page_size));
  GPUJOIN_CHECK(coverage_bytes >= page_size)
      << "TLB coverage smaller than one page";
  uint64_t entries = coverage_bytes / page_size;
  // Cache geometry wants a power of two; round down so we never overstate
  // the coverage.
  if (!bits::IsPowerOfTwo(entries)) {
    entries = uint64_t{1} << bits::Log2Floor(entries);
  }
  return entries;
}

}  // namespace

Tlb::Tlb(uint64_t coverage_bytes, uint64_t page_size, int ways)
    : page_size_(page_size),
      entries_(ComputeEntries(coverage_bytes, page_size)),
      // Reuse Cache with size = entries, "line size" 1.
      cache_(entries_, 1, ways) {}

}  // namespace gpujoin::sim
