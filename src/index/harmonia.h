#ifndef GPUJOIN_INDEX_HARMONIA_H_
#define GPUJOIN_INDEX_HARMONIA_H_

#include <vector>

#include "index/index.h"
#include "mem/address_space.h"

namespace gpujoin::index {

// Harmonia (Yan et al., PPoPP'19): a GPU-optimized B+tree that stores all
// node key regions in one contiguous array and replaces child pointers
// with a prefix-sum child array. Lookups are performed cooperatively: the
// warp is divided into sub-warps, each responsible for one probe key at a
// time; the sub-warp's lanes compare the node's keys in parallel, so the
// (at most two) cachelines of a node are fetched once per key rather than
// once per comparison step.
//
// The paper configures Harmonia with 32 keys per node (Sec. 3.2). As with
// BTreeIndex, the bulk-loaded structure is implicit: node contents are
// computed from the sorted column, while the key-region and child-array
// accesses are charged at the addresses a materialized Harmonia would use.
class HarmoniaIndex : public Index {
 public:
  struct Options {
    uint32_t keys_per_node = 32;  // paper Sec. 3.2
    int sub_warp_width = 4;       // lanes cooperating per probe key
  };

  HarmoniaIndex(mem::AddressSpace* space, const workload::KeyColumn* column,
                const Options& options);
  HarmoniaIndex(mem::AddressSpace* space, const workload::KeyColumn* column);

  std::string name() const override { return "harmonia"; }
  const workload::KeyColumn& column() const override { return *column_; }
  uint64_t footprint_bytes() const override {
    // Key regions (a full copy of the keys, grouped into nodes) plus the
    // prefix-sum child array: the "larger persistent state" that makes
    // tree indexes hit the TLB range earlier (paper Sec. 4.3.2).
    return total_nodes_ * node_key_bytes() + total_nodes_ * 8;
  }

  uint32_t LookupWarp(sim::Warp& warp, const Key* keys, uint32_t mask,
                      uint64_t* out_pos) const override;

  int height() const { return static_cast<int>(level_counts_.size()); }
  uint32_t keys_per_node() const { return keys_per_node_; }
  int sub_warp_width() const { return sub_warp_width_; }
  uint64_t num_nodes(int level) const { return level_counts_[level]; }

  // Functional node content, exposed for tests. `slot` must be < the
  // node's key count. Level 0 = leaves.
  Key NodeKey(int level, uint64_t node, uint32_t slot) const;
  uint32_t NodeKeyCount(int level, uint64_t node) const;

 private:
  uint64_t node_key_bytes() const { return uint64_t{keys_per_node_} * 8; }
  mem::VirtAddr KeySlotAddr(int level, uint64_t node, uint32_t slot) const;
  mem::VirtAddr ChildArrayAddr(int level, uint64_t node) const;
  uint64_t FirstPosition(int level, uint64_t node) const;

  const workload::KeyColumn* column_;
  uint32_t keys_per_node_;
  int sub_warp_width_;
  uint64_t total_nodes_ = 0;
  std::vector<uint64_t> level_counts_;        // level 0 = leaves
  std::vector<uint64_t> level_node_offset_;
  std::vector<uint64_t> leaves_per_node_;
  mem::Region key_region_;
  mem::Region child_region_;
};

}  // namespace gpujoin::index

#endif  // GPUJOIN_INDEX_HARMONIA_H_
