#include "index/dynamic_btree.h"

#include <algorithm>
#include <array>

#include "util/check.h"
#include "util/units.h"

namespace gpujoin::index {

namespace {
constexpr uint32_t kHeaderBytes = 16;
// Reservation growth granularity in node slots: the address space is
// extended one chunk at a time, so footprint_bytes() (= reserved bytes)
// tracks actual tree growth instead of pinning max_nodes * node_bytes up
// front.
constexpr uint64_t kChunkNodes = 1024;
}  // namespace

struct DynamicBTree::Node {
  bool leaf;
  uint64_t slot;  // index into the node region
  std::vector<Key> keys;
  std::vector<uint64_t> values;   // leaves: parallel to keys
  std::vector<Node*> children;    // inner: keys.size() + 1 entries
};

Status DynamicBTree::ValidateOptions(const Options& options) {
  if (options.node_bytes < kMinNodeBytes ||
      options.node_bytes > kMaxNodeBytes) {
    return Status::InvalidArgument(
        "dynamic btree node_bytes must be in [" +
        std::to_string(kMinNodeBytes) + ", " + std::to_string(kMaxNodeBytes) +
        "], got " + std::to_string(options.node_bytes));
  }
  if (options.max_nodes < kMinMaxNodes || options.max_nodes > kMaxMaxNodes) {
    return Status::InvalidArgument(
        "dynamic btree max_nodes must be in [" +
        std::to_string(kMinMaxNodes) + ", " + std::to_string(kMaxMaxNodes) +
        "], got " + std::to_string(options.max_nodes));
  }
  return Status();
}

DynamicBTree::DynamicBTree(mem::AddressSpace* space)
    : DynamicBTree(space, Options()) {}

DynamicBTree::DynamicBTree(mem::AddressSpace* space, const Options& options)
    : space_(space),
      node_bytes_(options.node_bytes),
      max_nodes_(options.max_nodes),
      chunk_nodes_(std::min<uint64_t>(kChunkNodes, options.max_nodes)) {
  GPUJOIN_CHECK(ValidateOptions(options).ok())
      << ValidateOptions(options).ToString();
  leaf_capacity_ = (node_bytes_ - kHeaderBytes) / 16;
  inner_capacity_ = (node_bytes_ - kHeaderBytes - 8) / 16;
  root_ = AllocateNode(/*leaf=*/true);
}

DynamicBTree::~DynamicBTree() { DestroySubtree(root_); }

void DynamicBTree::DestroySubtree(Node* node) {
  if (node == nullptr) return;
  if (!node->leaf) {
    for (Node* child : node->children) DestroySubtree(child);
  }
  delete node;
}

void DynamicBTree::Clear() {
  DestroySubtree(root_);
  free_slots_.clear();
  next_node_slot_ = 0;
  num_nodes_ = 0;
  size_ = 0;
  root_ = AllocateNode(/*leaf=*/true);
}

DynamicBTree::Node* DynamicBTree::AllocateNode(bool leaf) {
  uint64_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    // Callers (Insert) pre-check slots_available(), so exhaustion here is
    // a programming error, not a runtime condition.
    GPUJOIN_CHECK(next_node_slot_ < max_nodes_) << "node budget exhausted";
    slot = next_node_slot_++;
    while (slot >= reserved_nodes_) {
      const uint64_t grow =
          std::min(chunk_nodes_, max_nodes_ - reserved_nodes_);
      regions_.push_back(space_->Reserve(grow * node_bytes_,
                                         mem::MemKind::kHost,
                                         "dynamic_btree.nodes"));
      reserved_nodes_ += grow;
    }
  }
  Node* node = new Node();
  node->leaf = leaf;
  node->slot = slot;
  ++num_nodes_;
  return node;
}

void DynamicBTree::FreeNode(Node* node) {
  free_slots_.push_back(node->slot);
  --num_nodes_;
  delete node;
}

mem::VirtAddr DynamicBTree::NodeAddr(const Node* node) const {
  return regions_[node->slot / chunk_nodes_].base +
         (node->slot % chunk_nodes_) * uint64_t{node_bytes_};
}

int DynamicBTree::height() const {
  int h = 1;
  const Node* node = root_;
  while (!node->leaf) {
    node = node->children[0];
    ++h;
  }
  return h;
}

// --- CPU-side maintenance -------------------------------------------------

namespace {

// Child to descend into: number of separators <= key.
//
// Separator staleness: a leaf split copies the right leaf's first key
// into the parent, and a later Erase of that exact key leaves the copy
// in place. That is safe by construction: the routing invariant is only
// that child[i] holds keys in the half-open range
// [separators[i-1], separators[i]) — a *lower bound*, not a first-key
// mirror. Erasing keys shrinks a child's key set, which can never move a
// remaining key below the separator, so upper_bound routing still sends
// every insert/lookup/erase of the erased key (or any key >= the stale
// separator) to the same child that would hold it. The borrow paths of
// FixUnderflow refresh separators only because borrowing *moves* keys
// across the boundary; merges erase the separator outright.
// CheckInvariants enforces exactly the half-open-range property, and the
// fixed-seed regression EraseFirstLeafKeyThenReinsertRoutesCorrectly
// exercises erase + re-insert + lookup of every key in a small tree.
int PickChild(const std::vector<workload::Key>& separators,
              workload::Key key) {
  return static_cast<int>(
      std::upper_bound(separators.begin(), separators.end(), key) -
      separators.begin());
}

}  // namespace

void DynamicBTree::SplitChild(Node* parent, int child_index) {
  Node* child = parent->children[child_index];
  Node* right = AllocateNode(child->leaf);

  if (child->leaf) {
    const size_t mid = child->keys.size() / 2;
    right->keys.assign(child->keys.begin() + mid, child->keys.end());
    right->values.assign(child->values.begin() + mid, child->values.end());
    child->keys.resize(mid);
    child->values.resize(mid);
    // Leaf split: the separator is a copy of the right leaf's first key.
    parent->keys.insert(parent->keys.begin() + child_index,
                        right->keys.front());
  } else {
    const size_t mid = child->keys.size() / 2;
    const Key separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
    right->children.assign(child->children.begin() + mid + 1,
                           child->children.end());
    child->keys.resize(mid);
    child->children.resize(mid + 1);
    parent->keys.insert(parent->keys.begin() + child_index, separator);
  }
  parent->children.insert(parent->children.begin() + child_index + 1, right);
}

void DynamicBTree::InsertNonFull(Node* node, Key key, uint64_t value) {
  if (node->leaf) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    const size_t pos = it - node->keys.begin();
    if (it != node->keys.end() && *it == key) {
      node->values[pos] = value;  // overwrite
      return;
    }
    node->keys.insert(it, key);
    node->values.insert(node->values.begin() + pos, value);
    ++size_;
    return;
  }
  int child_index = PickChild(node->keys, key);
  Node* child = node->children[child_index];
  const uint32_t capacity = child->leaf ? leaf_capacity_ : inner_capacity_;
  if (child->keys.size() == capacity) {
    SplitChild(node, child_index);
    if (key >= node->keys[child_index]) ++child_index;
  }
  InsertNonFull(node->children[child_index], key, value);
}

Status DynamicBTree::Insert(Key key, uint64_t value) {
  // Worst case the insert allocates one split node per level plus a new
  // root. Refusing up front (conservatively — an overwrite allocates
  // nothing) keeps the tree untouched on failure and guarantees
  // AllocateNode never trips its budget CHECK on this path.
  const uint64_t worst_case = static_cast<uint64_t>(height()) + 1;
  if (slots_available() < worst_case) {
    return Status::ResourceExhausted(
        "dynamic btree node budget exhausted (" +
        std::to_string(num_nodes_) + " nodes live, max_nodes=" +
        std::to_string(max_nodes_) + ")");
  }
  const uint32_t root_capacity =
      root_->leaf ? leaf_capacity_ : inner_capacity_;
  if (root_->keys.size() == root_capacity) {
    Node* new_root = AllocateNode(/*leaf=*/false);
    new_root->children.push_back(root_);
    root_ = new_root;
    SplitChild(new_root, 0);
  }
  InsertNonFull(root_, key, value);
  return Status();
}

std::optional<uint64_t> DynamicBTree::Find(Key key) const {
  const Node* node = root_;
  while (!node->leaf) {
    node = node->children[PickChild(node->keys, key)];
  }
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  if (it == node->keys.end() || *it != key) return std::nullopt;
  return node->values[it - node->keys.begin()];
}

void DynamicBTree::VisitSubtree(
    const Node* node, const std::function<void(Key, uint64_t)>& fn) const {
  if (node->leaf) {
    for (size_t i = 0; i < node->keys.size(); ++i) {
      fn(node->keys[i], node->values[i]);
    }
    return;
  }
  for (const Node* child : node->children) VisitSubtree(child, fn);
}

void DynamicBTree::Visit(
    const std::function<void(Key, uint64_t)>& fn) const {
  VisitSubtree(root_, fn);
}

void DynamicBTree::FixUnderflow(Node* parent, int child_index) {
  Node* child = parent->children[child_index];
  const uint32_t capacity = child->leaf ? leaf_capacity_ : inner_capacity_;
  const uint32_t min_fill = (capacity - 1) / 2;
  if (child->keys.size() >= min_fill) return;

  Node* left = child_index > 0 ? parent->children[child_index - 1] : nullptr;
  Node* right = child_index + 1 < static_cast<int>(parent->children.size())
                    ? parent->children[child_index + 1]
                    : nullptr;

  if (right != nullptr && right->keys.size() > min_fill) {
    // Borrow the right sibling's first entry.
    if (child->leaf) {
      child->keys.push_back(right->keys.front());
      child->values.push_back(right->values.front());
      right->keys.erase(right->keys.begin());
      right->values.erase(right->values.begin());
      parent->keys[child_index] = right->keys.front();
    } else {
      child->keys.push_back(parent->keys[child_index]);
      parent->keys[child_index] = right->keys.front();
      right->keys.erase(right->keys.begin());
      child->children.push_back(right->children.front());
      right->children.erase(right->children.begin());
    }
    return;
  }
  if (left != nullptr && left->keys.size() > min_fill) {
    // Borrow the left sibling's last entry.
    if (child->leaf) {
      child->keys.insert(child->keys.begin(), left->keys.back());
      child->values.insert(child->values.begin(), left->values.back());
      left->keys.pop_back();
      left->values.pop_back();
      parent->keys[child_index - 1] = child->keys.front();
    } else {
      child->keys.insert(child->keys.begin(),
                         parent->keys[child_index - 1]);
      parent->keys[child_index - 1] = left->keys.back();
      left->keys.pop_back();
      child->children.insert(child->children.begin(),
                             left->children.back());
      left->children.pop_back();
    }
    return;
  }

  // Merge with a sibling (the pair cannot exceed one node's capacity).
  Node* a = left != nullptr ? left : child;
  Node* b = left != nullptr ? child : right;
  const int sep = left != nullptr ? child_index - 1 : child_index;
  GPUJOIN_CHECK(b != nullptr);
  if (a->leaf) {
    a->keys.insert(a->keys.end(), b->keys.begin(), b->keys.end());
    a->values.insert(a->values.end(), b->values.begin(), b->values.end());
  } else {
    a->keys.push_back(parent->keys[sep]);
    a->keys.insert(a->keys.end(), b->keys.begin(), b->keys.end());
    a->children.insert(a->children.end(), b->children.begin(),
                       b->children.end());
    b->children.clear();
  }
  parent->keys.erase(parent->keys.begin() + sep);
  parent->children.erase(parent->children.begin() + sep + 1);
  FreeNode(b);
}

bool DynamicBTree::EraseRecursive(Node* node, Key key) {
  if (node->leaf) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    if (it == node->keys.end() || *it != key) return false;
    node->values.erase(node->values.begin() + (it - node->keys.begin()));
    node->keys.erase(it);
    --size_;
    return true;
  }
  const int child_index = PickChild(node->keys, key);
  const bool erased = EraseRecursive(node->children[child_index], key);
  if (erased) FixUnderflow(node, child_index);
  return erased;
}

bool DynamicBTree::Erase(Key key) {
  const bool erased = EraseRecursive(root_, key);
  if (!root_->leaf && root_->keys.empty()) {
    // Shrink the tree when the root has a single child left.
    Node* old_root = root_;
    root_ = root_->children[0];
    old_root->children.clear();
    FreeNode(old_root);
  }
  return erased;
}

// --- SIMT read path ---------------------------------------------------------

uint32_t DynamicBTree::LookupWarp(sim::Warp& warp, const Key* keys,
                                  uint32_t mask,
                                  uint64_t* out_value) const {
  constexpr int kW = sim::Warp::kWidth;
  std::array<const Node*, kW> node{};
  std::array<mem::VirtAddr, kW> addrs{};
  for (int lane = 0; lane < kW; ++lane) {
    if (mask & (1u << lane)) node[lane] = root_;
  }

  // All leaves sit at the same depth, so the warp descends in lock-step.
  const int levels = height();
  for (int depth = 0; depth < levels; ++depth) {
    // Node header.
    for (int lane = 0; lane < kW; ++lane) {
      if (mask & (1u << lane)) addrs[lane] = NodeAddr(node[lane]);
    }
    warp.Gather(addrs.data(), mask, kHeaderBytes);

    // Lock-step binary search over the node's keys.
    std::array<uint32_t, kW> lo{};
    std::array<uint32_t, kW> hi{};
    for (int lane = 0; lane < kW; ++lane) {
      if (!(mask & (1u << lane))) continue;
      lo[lane] = 0;
      hi[lane] = static_cast<uint32_t>(node[lane]->keys.size());
    }
    uint32_t active = mask;
    while (active != 0) {
      uint32_t issue = 0;
      std::array<uint32_t, kW> mid{};
      for (int lane = 0; lane < kW; ++lane) {
        if (!(active & (1u << lane))) continue;
        if (lo[lane] >= hi[lane]) {
          active &= ~(1u << lane);
          continue;
        }
        mid[lane] = lo[lane] + (hi[lane] - lo[lane]) / 2;
        addrs[lane] =
            NodeAddr(node[lane]) + kHeaderBytes + uint64_t{mid[lane]} * 8;
        issue |= 1u << lane;
      }
      if (issue == 0) break;
      warp.Gather(addrs.data(), issue, sizeof(Key));
      for (int lane = 0; lane < kW; ++lane) {
        if (!(issue & (1u << lane))) continue;
        const Node* n = node[lane];
        const Key probe = keys[lane];
        const bool go_right = n->leaf ? n->keys[mid[lane]] < probe
                                      : n->keys[mid[lane]] <= probe;
        if (go_right) {
          lo[lane] = mid[lane] + 1;
        } else {
          hi[lane] = mid[lane];
        }
      }
    }

    if (depth + 1 < levels) {
      // Read the child pointer slot and descend.
      for (int lane = 0; lane < kW; ++lane) {
        if (!(mask & (1u << lane))) continue;
        addrs[lane] = NodeAddr(node[lane]) + kHeaderBytes +
                      uint64_t{inner_capacity_} * 8 + uint64_t{lo[lane]} * 8;
        node[lane] = node[lane]->children[lo[lane]];
      }
      warp.Gather(addrs.data(), mask, 8);
    } else {
      // Leaf: read the value slot for matches.
      uint32_t found = 0;
      uint32_t value_mask = 0;
      for (int lane = 0; lane < kW; ++lane) {
        if (!(mask & (1u << lane))) continue;
        const Node* n = node[lane];
        if (lo[lane] < n->keys.size() && n->keys[lo[lane]] == keys[lane]) {
          out_value[lane] = n->values[lo[lane]];
          found |= 1u << lane;
          addrs[lane] = NodeAddr(n) + kHeaderBytes +
                        uint64_t{leaf_capacity_} * 8 + uint64_t{lo[lane]} * 8;
          value_mask |= 1u << lane;
        }
      }
      if (value_mask != 0) warp.Gather(addrs.data(), value_mask, 8);
      return found;
    }
  }
  return 0;  // unreachable: the loop returns at the leaf level
}

// --- Invariants --------------------------------------------------------------

int DynamicBTree::LeafDepth() const {
  int depth = 0;
  const Node* node = root_;
  while (!node->leaf) {
    node = node->children[0];
    ++depth;
  }
  return depth;
}

void DynamicBTree::CheckSubtree(const Node* node, const Node* root,
                                Key lower, bool has_lower, Key upper,
                                bool has_upper, int depth,
                                int leaf_depth) const {
  const uint32_t capacity = node->leaf ? leaf_capacity_ : inner_capacity_;
  GPUJOIN_CHECK(node->keys.size() <= capacity);
  if (node != root) {
    const uint32_t min_fill = (capacity - 1) / 2;
    GPUJOIN_CHECK(node->keys.size() >= min_fill)
        << "underfull node: " << node->keys.size() << " < " << min_fill;
  }
  for (size_t i = 1; i < node->keys.size(); ++i) {
    GPUJOIN_CHECK(node->keys[i - 1] < node->keys[i]) << "key order";
  }
  if (!node->keys.empty()) {
    if (has_lower) GPUJOIN_CHECK(node->keys.front() >= lower);
    if (has_upper) GPUJOIN_CHECK(node->keys.back() < upper);
  }
  if (node->leaf) {
    GPUJOIN_CHECK(depth == leaf_depth) << "leaves at non-uniform depth";
    GPUJOIN_CHECK(node->values.size() == node->keys.size());
    return;
  }
  GPUJOIN_CHECK(node->children.size() == node->keys.size() + 1);
  for (size_t c = 0; c < node->children.size(); ++c) {
    const bool child_has_lower = c > 0 || has_lower;
    const Key child_lower = c > 0 ? node->keys[c - 1] : lower;
    const bool child_has_upper = c < node->keys.size() || has_upper;
    const Key child_upper = c < node->keys.size() ? node->keys[c] : upper;
    CheckSubtree(node->children[c], root, child_lower, child_has_lower,
                 child_upper, child_has_upper, depth + 1, leaf_depth);
  }
}

void DynamicBTree::CheckInvariants() const {
  CheckSubtree(root_, root_, 0, false, 0, false, 0, LeafDepth());
}

}  // namespace gpujoin::index
