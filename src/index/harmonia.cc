#include "index/harmonia.h"

#include <algorithm>
#include <array>

#include "util/bit_util.h"
#include "util/check.h"

namespace gpujoin::index {

HarmoniaIndex::HarmoniaIndex(mem::AddressSpace* space,
                             const workload::KeyColumn* column)
    : HarmoniaIndex(space, column, Options()) {}

HarmoniaIndex::HarmoniaIndex(mem::AddressSpace* space,
                             const workload::KeyColumn* column,
                             const Options& options)
    : column_(column),
      keys_per_node_(options.keys_per_node),
      sub_warp_width_(options.sub_warp_width) {
  GPUJOIN_CHECK(keys_per_node_ >= 2);
  GPUJOIN_CHECK(sub_warp_width_ >= 1 &&
                sub_warp_width_ <= sim::Warp::kWidth);
  GPUJOIN_CHECK(sim::Warp::kWidth % sub_warp_width_ == 0)
      << "sub-warp width must divide the warp width";

  const uint64_t n = column_->size();
  level_counts_.push_back(bits::CeilDiv(n, keys_per_node_));
  while (level_counts_.back() > 1) {
    level_counts_.push_back(
        bits::CeilDiv(level_counts_.back(), keys_per_node_));
  }

  leaves_per_node_.resize(level_counts_.size());
  level_node_offset_.resize(level_counts_.size());
  uint64_t offset = 0;
  uint64_t leaves = 1;
  for (size_t l = 0; l < level_counts_.size(); ++l) {
    leaves_per_node_[l] = leaves;
    leaves *= keys_per_node_;
    level_node_offset_[l] = offset;
    offset += level_counts_[l];
  }
  total_nodes_ = offset;

  key_region_ = space->Reserve(total_nodes_ * node_key_bytes(),
                               mem::MemKind::kHost, "harmonia.keys");
  child_region_ = space->Reserve(total_nodes_ * 8, mem::MemKind::kHost,
                                 "harmonia.children");
}

mem::VirtAddr HarmoniaIndex::KeySlotAddr(int level, uint64_t node,
                                         uint32_t slot) const {
  GPUJOIN_DCHECK(level >= 0 && level < height());
  GPUJOIN_DCHECK(node < level_counts_[level]);
  return key_region_.base +
         (level_node_offset_[level] + node) * node_key_bytes() +
         uint64_t{slot} * 8;
}

mem::VirtAddr HarmoniaIndex::ChildArrayAddr(int level, uint64_t node) const {
  return child_region_.base + (level_node_offset_[level] + node) * 8;
}

uint64_t HarmoniaIndex::FirstPosition(int level, uint64_t node) const {
  return node * leaves_per_node_[level] * keys_per_node_;
}

uint32_t HarmoniaIndex::NodeKeyCount(int level, uint64_t node) const {
  if (level == 0) {
    const uint64_t n = column_->size();
    const uint64_t first = node * keys_per_node_;
    GPUJOIN_DCHECK(first < n);
    return static_cast<uint32_t>(
        std::min<uint64_t>(keys_per_node_, n - first));
  }
  const uint64_t below = level_counts_[level - 1];
  const uint64_t first_child = node * keys_per_node_;
  GPUJOIN_DCHECK(first_child < below);
  return static_cast<uint32_t>(
      std::min<uint64_t>(keys_per_node_, below - first_child));
}

Key HarmoniaIndex::NodeKey(int level, uint64_t node, uint32_t slot) const {
  GPUJOIN_DCHECK(slot < NodeKeyCount(level, node));
  if (level == 0) {
    return column_->key_at(node * keys_per_node_ + slot);
  }
  // Inner key `slot` is the first key of child `slot`'s subtree.
  return column_->key_at(FirstPosition(level - 1,
                                       node * keys_per_node_ + slot));
}

uint32_t HarmoniaIndex::LookupWarp(sim::Warp& warp, const Key* keys,
                                   uint32_t mask, uint64_t* out_pos) const {
  constexpr int kW = sim::Warp::kWidth;
  const int w = sub_warp_width_;
  const int num_sub_warps = kW / w;
  const uint64_t n = column_->size();

  // Gather the lanes with work; sub-warps then take the pending keys in
  // rounds (the dynamic rescheduling of paper Sec. 3.3.1).
  std::array<int, kW> pending{};
  int num_pending = 0;
  for (int lane = 0; lane < kW; ++lane) {
    if (mask & (1u << lane)) pending[num_pending++] = lane;
  }

  uint32_t found = 0;
  std::array<mem::VirtAddr, kW> addrs{};

  for (int round_base = 0; round_base < num_pending;
       round_base += num_sub_warps) {
    const int round_keys =
        std::min(num_sub_warps, num_pending - round_base);

    std::array<uint64_t, kW> node{};  // per sub-warp, indexed 0..round_keys
    for (int level = height() - 1; level >= 0; --level) {
      // Cooperative node-key read: the sub-warp's w lanes sweep all of
      // the node's keys in ceil(keys_per_node / w) rounds, touching every
      // cacheline of the node exactly once (regardless of w — what the
      // width changes is the number of comparison rounds and how many
      // keys are in flight per warp). Line-distinct rounds are issued as
      // gathers; the remaining rounds are pure comparisons.
      const uint32_t line_bytes = warp.memory().line_bytes();
      const uint32_t lines_per_node = std::max<uint32_t>(
          1, static_cast<uint32_t>(node_key_bytes() / line_bytes));
      const uint32_t slots_per_line = line_bytes / 8;
      const int line_rounds =
          static_cast<int>(bits::CeilDiv(lines_per_node, w));
      for (int g = 0; g < line_rounds; ++g) {
        uint32_t issue = 0;
        for (int s = 0; s < round_keys; ++s) {
          for (int j = 0; j < w; ++j) {
            const uint32_t line = g * w + j;
            if (line >= lines_per_node) break;
            const uint32_t slot =
                std::min(line * slots_per_line, keys_per_node_ - 1);
            const int lane = s * w + j;
            addrs[lane] = KeySlotAddr(level, node[s], slot);
            issue |= 1u << lane;
          }
        }
        warp.Gather(addrs.data(), issue, sizeof(Key));
      }
      // Comparison rounds beyond the line sweeps (redundant lane work for
      // wide sub-warps, extra iterations for narrow ones).
      const uint64_t total_rounds = bits::CeilDiv(keys_per_node_, w);
      if (total_rounds > static_cast<uint64_t>(line_rounds)) {
        warp.AddSteps(total_rounds - line_rounds);
      }

      if (level > 0) {
        // Child = number of node keys <= probe, minus one (clamped):
        // node key c is the first key of child c's subtree.
        for (int s = 0; s < round_keys; ++s) {
          const Key probe = keys[pending[round_base + s]];
          const uint32_t count = NodeKeyCount(level, node[s]);
          uint32_t lo = 0;
          uint32_t hi = count;
          while (lo < hi) {
            const uint32_t mid = lo + (hi - lo) / 2;
            if (NodeKey(level, node[s], mid) <= probe) {
              lo = mid + 1;
            } else {
              hi = mid;
            }
          }
          const uint32_t child = lo > 0 ? lo - 1 : 0;
          node[s] = node[s] * keys_per_node_ + child;
        }
        // Prefix-sum child array lookup: one lane per sub-warp.
        uint32_t child_issue = 0;
        for (int s = 0; s < round_keys; ++s) {
          const int lane = s * w;
          // Address of the *parent*'s child-array entry.
          addrs[lane] =
              ChildArrayAddr(level, node[s] / keys_per_node_);
          child_issue |= 1u << lane;
        }
        warp.Gather(addrs.data(), child_issue, 8);
      } else {
        // Leaf: lower bound within the node.
        for (int s = 0; s < round_keys; ++s) {
          const int lane = pending[round_base + s];
          const Key probe = keys[lane];
          const uint32_t count = NodeKeyCount(0, node[s]);
          uint32_t lo = 0;
          uint32_t hi = count;
          while (lo < hi) {
            const uint32_t mid = lo + (hi - lo) / 2;
            if (NodeKey(0, node[s], mid) < probe) {
              lo = mid + 1;
            } else {
              hi = mid;
            }
          }
          const uint64_t pos = node[s] * keys_per_node_ + lo;
          out_pos[lane] = pos;
          if (pos < n && lo < count && NodeKey(0, node[s], lo) == probe) {
            found |= 1u << lane;
          }
        }
      }
    }
  }
  return found;
}

}  // namespace gpujoin::index
