#ifndef GPUJOIN_INDEX_RADIX_SPLINE_H_
#define GPUJOIN_INDEX_RADIX_SPLINE_H_

#include <memory>

#include "index/index.h"
#include "index/spline.h"
#include "mem/sim_array.h"

namespace gpujoin::index {

// RadixSpline (Kipf et al. [25]): a learned index over a sorted array.
// A radix table over the most significant key bits narrows the search to
// a small range of spline points; interpolating the two bracketing points
// yields an estimated position, and a bounded binary search in the data
// finishes the lookup. The paper finds it the fastest index for
// out-of-core INLJs (Sec. 6).
class RadixSplineIndex : public Index {
 public:
  struct Options {
    int radix_bits = 18;
    // Greedy-corridor error bound (materialized builds).
    uint64_t max_error = 32;
    // Knot interval for procedural columns.
    uint64_t uniform_interval = 1024;
    // Columns larger than this are built with a UniformSpline instead of
    // scanning (procedural columns cannot be scanned at build time).
    uint64_t greedy_size_limit = uint64_t{1} << 24;
  };

  // Builds the spline (greedy or uniform depending on column size) and
  // the radix table.
  static std::unique_ptr<RadixSplineIndex> Build(
      mem::AddressSpace* space, const workload::KeyColumn* column,
      const Options& options);
  static std::unique_ptr<RadixSplineIndex> Build(
      mem::AddressSpace* space, const workload::KeyColumn* column);

  RadixSplineIndex(mem::AddressSpace* space,
                   const workload::KeyColumn* column,
                   std::unique_ptr<SplineStorage> spline, int radix_bits);

  std::string name() const override { return "radix_spline"; }
  const workload::KeyColumn& column() const override { return *column_; }
  uint64_t footprint_bytes() const override {
    return spline_->footprint_bytes() + radix_table_.size() * 8;
  }

  uint32_t LookupWarp(sim::Warp& warp, const Key* keys, uint32_t mask,
                      uint64_t* out_pos) const override;

  const SplineStorage& spline() const { return *spline_; }
  int radix_bits() const { return radix_bits_; }

 private:
  uint64_t Prefix(Key key) const;

  const workload::KeyColumn* column_;
  std::unique_ptr<SplineStorage> spline_;
  int radix_bits_;
  int shift_;
  mem::SimArray<uint64_t> radix_table_;  // 2^radix_bits + 1 entries
};

}  // namespace gpujoin::index

#endif  // GPUJOIN_INDEX_RADIX_SPLINE_H_
