#ifndef GPUJOIN_INDEX_BTREE_H_
#define GPUJOIN_INDEX_BTREE_H_

#include <vector>

#include "index/index.h"
#include "mem/address_space.h"

namespace gpujoin::index {

// Bulk-loaded B+tree with fixed-size nodes (4 KiB in the paper,
// Sec. 3.2). Inner nodes hold separator keys and child ids; leaves hold
// keys (positions are implicit in the bulk-loaded layout, so the index
// stays close to one key copy — the same footprint economy that lets the
// paper index 111 GiB within 256 GiB of CPU memory). Within each node,
// lookups binary-search the key slots, which spans multiple cachelines
// for large nodes — the access pattern the paper analyzes in Sec. 3.1.
//
// The tree is *implicit*: because it is bulk-loaded from a sorted column,
// every node's content is a pure function of (level, node, slot), so the
// tree never needs materializing — it reserves simulated address space and
// computes key slots by delegating to the column. This is exactly the
// read path of a materialized bulk-loaded tree (verified against a
// reference in the tests), and it lets the simulator index 100+ GiB
// relations.
class BTreeIndex : public Index {
 public:
  struct Options {
    uint32_t node_bytes = 4096;
    // Bulk-load fill factor for leaf and inner nodes.
    double fill_factor = 0.9;
  };

  BTreeIndex(mem::AddressSpace* space, const workload::KeyColumn* column,
             const Options& options);
  BTreeIndex(mem::AddressSpace* space, const workload::KeyColumn* column);

  std::string name() const override { return "btree"; }
  const workload::KeyColumn& column() const override { return *column_; }
  uint64_t footprint_bytes() const override { return total_nodes_ * node_bytes_; }

  uint32_t LookupWarp(sim::Warp& warp, const Key* keys, uint32_t mask,
                      uint64_t* out_pos) const override;

  // Number of levels including the leaf level.
  int height() const { return static_cast<int>(level_counts_.size()); }
  uint32_t keys_per_leaf() const { return keys_per_leaf_; }
  uint32_t fanout() const { return fanout_; }
  uint64_t num_nodes(int level) const { return level_counts_[level]; }

  // Exposed for tests: functional node content.
  Key LeafKey(uint64_t leaf, uint32_t slot) const;
  uint32_t LeafKeyCount(uint64_t leaf) const;
  Key InnerSeparator(int level, uint64_t node, uint32_t sep) const;
  uint32_t InnerChildCount(int level, uint64_t node) const;

 private:
  static constexpr uint32_t kHeaderBytes = 16;

  mem::VirtAddr NodeAddr(int level, uint64_t node) const;
  mem::VirtAddr LeafKeySlotAddr(uint64_t leaf, uint32_t slot) const;
  mem::VirtAddr InnerKeySlotAddr(int level, uint64_t node,
                                 uint32_t slot) const;

  // First column position covered by `node` at `level`.
  uint64_t FirstPosition(int level, uint64_t node) const;

  const workload::KeyColumn* column_;
  uint32_t node_bytes_;
  uint32_t keys_per_leaf_;   // filled leaf entries
  uint32_t fanout_;          // children per filled inner node
  uint64_t total_nodes_ = 0;
  // level 0 = leaves; level_counts_.back() == 1 (root).
  std::vector<uint64_t> level_counts_;
  std::vector<uint64_t> level_node_offset_;  // node-index offset per level
  // leaves_per_node_[l] = number of leaves under one node at level l.
  std::vector<uint64_t> leaves_per_node_;
  mem::Region region_;
};

}  // namespace gpujoin::index

#endif  // GPUJOIN_INDEX_BTREE_H_
