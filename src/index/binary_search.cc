#include "index/binary_search.h"

#include <array>

namespace gpujoin::index {

uint32_t BinarySearchIndex::LookupWarp(sim::Warp& warp, const Key* keys,
                                       uint32_t mask,
                                       uint64_t* out_pos) const {
  const workload::KeyColumn& col = *column_;
  const uint64_t n = col.size();

  std::array<uint64_t, sim::Warp::kWidth> lo{};
  std::array<uint64_t, sim::Warp::kWidth> hi{};
  std::array<mem::VirtAddr, sim::Warp::kWidth> addrs{};

  for (int lane = 0; lane < sim::Warp::kWidth; ++lane) {
    if (mask & (1u << lane)) {
      lo[lane] = 0;
      hi[lane] = n;
    }
  }

  // Lock-step binary search: all active lanes issue their mid-probe in the
  // same memory instruction, which the hardware coalesces.
  uint32_t active = mask;
  while (active != 0) {
    uint32_t issue = 0;
    std::array<uint64_t, sim::Warp::kWidth> mid{};
    for (int lane = 0; lane < sim::Warp::kWidth; ++lane) {
      if (!(active & (1u << lane))) continue;
      if (lo[lane] >= hi[lane]) {
        active &= ~(1u << lane);
        continue;
      }
      mid[lane] = lo[lane] + (hi[lane] - lo[lane]) / 2;
      addrs[lane] = col.addr_of(mid[lane]);
      issue |= 1u << lane;
    }
    if (issue == 0) break;
    warp.Gather(addrs.data(), issue, sizeof(Key));
    for (int lane = 0; lane < sim::Warp::kWidth; ++lane) {
      if (!(issue & (1u << lane))) continue;
      if (col.key_at(mid[lane]) < keys[lane]) {
        lo[lane] = mid[lane] + 1;
      } else {
        hi[lane] = mid[lane];
      }
    }
  }

  // Verify the match by reading the found tuple (the INLJ needs it
  // anyway); positions at end-of-column are misses.
  uint32_t verify = 0;
  for (int lane = 0; lane < sim::Warp::kWidth; ++lane) {
    if (!(mask & (1u << lane))) continue;
    out_pos[lane] = lo[lane];
    if (lo[lane] < n) {
      addrs[lane] = col.addr_of(lo[lane]);
      verify |= 1u << lane;
    }
  }
  if (verify != 0) warp.Gather(addrs.data(), verify, sizeof(Key));

  uint32_t found = 0;
  for (int lane = 0; lane < sim::Warp::kWidth; ++lane) {
    if (!(verify & (1u << lane))) continue;
    if (col.key_at(out_pos[lane]) == keys[lane]) found |= 1u << lane;
  }
  return found;
}

}  // namespace gpujoin::index
