#ifndef GPUJOIN_INDEX_INDEX_H_
#define GPUJOIN_INDEX_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>

#include "sim/gpu.h"
#include "workload/key_column.h"

namespace gpujoin::index {

using workload::Key;

// A GPU-resident read path over a secondary index declared on a sorted
// key column R in CPU memory (paper Sec. 3.1). The index answers
// lower-bound lookups: position of the first key >= probe key.
//
// Lookups are SIMT: a whole warp of up to 32 probe keys is processed in
// lock-step, issuing coalesced memory instructions through the Warp. This
// is where the four index structures differ — the sequence of memory
// accesses per lookup is exactly the paper's subject of study.
class Index {
 public:
  virtual ~Index() = default;

  virtual std::string name() const = 0;

  // The indexed column.
  virtual const workload::KeyColumn& column() const = 0;

  // Bytes of persistent index state in CPU memory, EXCLUDING the base
  // column itself. Used for the paper's memory-capacity constraint
  // ("size limit of R is reduced for the B+tree and Harmonia",
  // Sec. 3.2).
  virtual uint64_t footprint_bytes() const = 0;

  // SIMT lookup: for each lane set in `mask`, finds the lower-bound
  // position of keys[lane] and writes it to out_pos[lane]. Returns the
  // mask of lanes whose key is actually present in the column.
  virtual uint32_t LookupWarp(sim::Warp& warp, const Key* keys,
                              uint32_t mask, uint64_t* out_pos) const = 0;

  // Functional-only lookup used by tests for ground truth.
  uint64_t LookupOne(sim::Gpu& gpu, Key key) const {
    uint64_t pos = 0;
    gpu.RunKernel("lookup_one", 1, [&](sim::Warp& warp) {
      LookupWarp(warp, &key, 1u, &pos);
    });
    return pos;
  }
};

// The index structures under study (paper Sec. 3.2). Used by the
// experiment drivers and bench binaries to select an implementation.
enum class IndexType {
  kBinarySearch,
  kBTree,
  kHarmonia,
  kRadixSpline,
};

const char* IndexTypeName(IndexType type);

}  // namespace gpujoin::index

#endif  // GPUJOIN_INDEX_INDEX_H_
