#ifndef GPUJOIN_INDEX_SPLINE_H_
#define GPUJOIN_INDEX_SPLINE_H_

#include <memory>
#include <vector>

#include "mem/address_space.h"
#include "mem/sim_array.h"
#include "workload/key_column.h"

namespace gpujoin::index {

using workload::Key;

// One spline knot: the CDF point (key, position).
struct SplinePoint {
  Key key;
  uint64_t pos;
};

// Storage abstraction for the RadixSpline's knots. Two implementations:
// a materialized spline built with the greedy corridor algorithm (the real
// RadixSpline builder, used for in-core columns), and a procedural uniform
// spline (knots at fixed position intervals) for the 100+ GiB procedural
// columns that cannot be scanned at build time. Lookup code is identical;
// only knot placement differs, and correctness never depends on the error
// bound (the final search window is clamped to the bracketing segment).
class SplineStorage {
 public:
  virtual ~SplineStorage() = default;

  virtual uint64_t num_points() const = 0;
  virtual Key point_key(uint64_t i) const = 0;
  virtual uint64_t point_pos(uint64_t i) const = 0;
  virtual mem::VirtAddr point_addr(uint64_t i) const = 0;
  virtual uint64_t footprint_bytes() const = 0;

  // Expected interpolation error in positions (search window radius).
  virtual uint64_t max_error() const = 0;
};

// Spline built with the single-pass GreedySplineCorridor algorithm (Kipf
// et al. [25]): emits a knot whenever the next CDF point would leave the
// +-max_error corridor around the current linear segment.
class GreedySpline : public SplineStorage {
 public:
  // Scans the whole column: only for materialized / in-core columns.
  GreedySpline(mem::AddressSpace* space, const workload::KeyColumn& column,
               uint64_t max_error);

  uint64_t num_points() const override { return points_.size(); }
  Key point_key(uint64_t i) const override { return points_[i].key; }
  uint64_t point_pos(uint64_t i) const override { return points_[i].pos; }
  mem::VirtAddr point_addr(uint64_t i) const override {
    return points_.addr_of(i);
  }
  uint64_t footprint_bytes() const override {
    return points_.size() * sizeof(SplinePoint);
  }
  uint64_t max_error() const override { return max_error_; }

 private:
  mem::SimArray<SplinePoint> points_;
  uint64_t max_error_;
};

// Computes the greedy-corridor knots for a column (exposed for tests).
std::vector<SplinePoint> BuildGreedySplinePoints(
    const workload::KeyColumn& column, uint64_t max_error);

// Procedural spline: knots every `interval` positions plus the last
// element. The effective interpolation error is estimated by sampling
// segments (exact for dense columns, ~1 for jittered ones).
class UniformSpline : public SplineStorage {
 public:
  UniformSpline(mem::AddressSpace* space, const workload::KeyColumn* column,
                uint64_t interval);

  uint64_t num_points() const override { return num_points_; }
  Key point_key(uint64_t i) const override {
    return column_->key_at(point_pos(i));
  }
  uint64_t point_pos(uint64_t i) const override;
  mem::VirtAddr point_addr(uint64_t i) const override {
    return region_.base + i * sizeof(SplinePoint);
  }
  uint64_t footprint_bytes() const override {
    return num_points_ * sizeof(SplinePoint);
  }
  uint64_t max_error() const override { return max_error_; }

 private:
  uint64_t EstimateError() const;

  const workload::KeyColumn* column_;
  uint64_t interval_;
  uint64_t num_points_;
  uint64_t max_error_;
  mem::Region region_;
};

}  // namespace gpujoin::index

#endif  // GPUJOIN_INDEX_SPLINE_H_
