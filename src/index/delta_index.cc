#include "index/delta_index.h"

#include <utility>

#include "util/check.h"

namespace gpujoin::index {

Result<std::unique_ptr<DeltaIndex>> DeltaIndex::Create(
    mem::AddressSpace* space, const Options& options) {
  Status s = DynamicBTree::ValidateOptions(options.tree);
  if (!s.ok()) return s;
  return std::unique_ptr<DeltaIndex>(new DeltaIndex(
      std::make_unique<DynamicBTree>(space, options.tree)));
}

DeltaIndex::DeltaIndex(std::unique_ptr<DynamicBTree> tree)
    : tree_(std::move(tree)) {}

Status DeltaIndex::Put(Key key, uint64_t tagged_value) {
  // Track live/tombstone counts across overwrites: an upsert over a
  // tombstone resurrects the key, a delete over a live entry kills it.
  const std::optional<uint64_t> prior = tree_->Find(key);
  Status s = tree_->Insert(key, tagged_value);
  if (!s.ok()) return s;
  if (prior.has_value()) {
    if (*prior & kTombstoneBit) --tombstones_;
    else --live_;
  }
  if (tagged_value & kTombstoneBit) ++tombstones_;
  else ++live_;
  return Status();
}

Status DeltaIndex::Upsert(Key key, uint64_t value) {
  GPUJOIN_CHECK((value & kTombstoneBit) == 0)
      << "delta payload collides with the tombstone tag";
  return Put(key, value);
}

Status DeltaIndex::Remove(Key key) { return Put(key, kTombstoneBit); }

std::optional<DeltaIndex::Entry> DeltaIndex::Find(Key key) const {
  const std::optional<uint64_t> tagged = tree_->Find(key);
  if (!tagged.has_value()) return std::nullopt;
  Entry e;
  e.tombstone = (*tagged & kTombstoneBit) != 0;
  e.value = *tagged & ~kTombstoneBit;
  return e;
}

uint32_t DeltaIndex::LookupWarp(sim::Warp& warp, const Key* keys,
                                uint32_t mask, uint64_t* out_value,
                                uint32_t* tombstone_mask) const {
  const uint32_t hits = tree_->LookupWarp(warp, keys, mask, out_value);
  uint32_t dead = 0;
  for (int lane = 0; lane < sim::Warp::kWidth; ++lane) {
    if (!(hits & (1u << lane))) continue;
    if (out_value[lane] & kTombstoneBit) {
      dead |= 1u << lane;
      out_value[lane] &= ~kTombstoneBit;
    }
  }
  *tombstone_mask = dead;
  return hits;
}

std::vector<DeltaIndex::SnapshotEntry> DeltaIndex::Snapshot() const {
  std::vector<SnapshotEntry> out;
  out.reserve(tree_->size());
  tree_->Visit([&out](Key key, uint64_t tagged) {
    out.push_back(SnapshotEntry{key, tagged});
  });
  return out;
}

void DeltaIndex::Clear() {
  tree_->Clear();
  live_ = 0;
  tombstones_ = 0;
}

}  // namespace gpujoin::index
