#ifndef GPUJOIN_INDEX_DYNAMIC_BTREE_H_
#define GPUJOIN_INDEX_DYNAMIC_BTREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "mem/address_space.h"
#include "sim/gpu.h"
#include "workload/key_column.h"

namespace gpujoin::index {

// A mutable B+tree in simulated CPU memory, with the same SIMT read path
// as the bulk-loaded BTreeIndex.
//
// The paper's evaluation uses read-only indexes ("we assume the index
// already exists when the query is run", Sec. 3.2) and recommends
// Harmonia/B+trees over learned indexes "if the index must support
// inserts and updates" (Sec. 6). DynamicBTree covers that scenario: the
// CPU maintains the tree between queries (Insert / Erase / Find), while
// the GPU performs out-of-core lookups against it through LookupWarp,
// charging the same coalesced cacheline traffic as the static indexes.
//
// Unlike the implicit bulk-loaded trees, nodes are materialized: each
// node owns real key/value storage plus a reserved simulated address, so
// arbitrary insert orders and splits/merges work.
class DynamicBTree {
 public:
  struct Options {
    uint32_t node_bytes = 4096;  // same node budget as the paper's B+tree
  };

  DynamicBTree(mem::AddressSpace* space, const Options& options);
  DynamicBTree(mem::AddressSpace* space);

  DynamicBTree(const DynamicBTree&) = delete;
  DynamicBTree& operator=(const DynamicBTree&) = delete;
  ~DynamicBTree();

  using Key = workload::Key;

  // CPU-side maintenance (no GPU traffic is charged).
  // Inserts key -> value; overwrites the value if the key exists.
  void Insert(Key key, uint64_t value);
  // Removes the key; returns false if absent.
  bool Erase(Key key);
  // Functional point lookup (CPU side).
  std::optional<uint64_t> Find(Key key) const;

  uint64_t size() const { return size_; }
  int height() const;
  uint64_t num_nodes() const { return num_nodes_; }
  uint64_t footprint_bytes() const { return num_nodes_ * node_bytes_; }

  // SIMT lookup of up to 32 keys (GPU side, charges coalesced gathers).
  // out_value[lane] receives the value for found lanes; returns the
  // found-mask.
  uint32_t LookupWarp(sim::Warp& warp, const Key* keys, uint32_t mask,
                      uint64_t* out_value) const;

  // Validates all tree invariants (key order, fill bounds, uniform leaf
  // depth, parent/child key consistency); CHECK-fails on violation.
  // Exposed for tests.
  void CheckInvariants() const;

 private:
  struct Node;

  Node* AllocateNode(bool leaf);
  void FreeNode(Node* node);
  void DestroySubtree(Node* node);

  // Returns the leaf that should contain `key`, charging nothing
  // (CPU-side descent).
  Node* DescendToLeaf(Key key) const;

  // Splits `node` (which is full); `parent` receives the new separator.
  // Root splits grow the tree.
  void SplitChild(Node* parent, int child_index);

  void InsertNonFull(Node* node, Key key, uint64_t value);

  // Rebalances `node`'s child at `child_index` if it underflowed
  // (borrow from a sibling or merge).
  void FixUnderflow(Node* parent, int child_index);

  bool EraseRecursive(Node* node, Key key);

  void CheckSubtree(const Node* node, const Node* root, Key lower,
                    bool has_lower, Key upper, bool has_upper,
                    int depth, int leaf_depth) const;
  int LeafDepth() const;

  mem::AddressSpace* space_;
  uint32_t node_bytes_;
  uint32_t leaf_capacity_;   // max keys per leaf
  uint32_t inner_capacity_;  // max keys per inner node
  mem::Region region_;
  uint64_t next_node_slot_ = 0;
  std::vector<uint64_t> free_slots_;
  Node* root_ = nullptr;
  uint64_t size_ = 0;
  uint64_t num_nodes_ = 0;
};

}  // namespace gpujoin::index

#endif  // GPUJOIN_INDEX_DYNAMIC_BTREE_H_
