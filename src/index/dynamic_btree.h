#ifndef GPUJOIN_INDEX_DYNAMIC_BTREE_H_
#define GPUJOIN_INDEX_DYNAMIC_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "mem/address_space.h"
#include "sim/gpu.h"
#include "util/status.h"
#include "workload/key_column.h"

namespace gpujoin::index {

// A mutable B+tree in simulated CPU memory, with the same SIMT read path
// as the bulk-loaded BTreeIndex.
//
// The paper's evaluation uses read-only indexes ("we assume the index
// already exists when the query is run", Sec. 3.2) and recommends
// Harmonia/B+trees over learned indexes "if the index must support
// inserts and updates" (Sec. 6). DynamicBTree covers that scenario: the
// CPU maintains the tree between queries (Insert / Erase / Find), while
// the GPU performs out-of-core lookups against it through LookupWarp,
// charging the same coalesced cacheline traffic as the static indexes.
//
// Unlike the implicit bulk-loaded trees, nodes are materialized: each
// node owns real key/value storage plus a reserved simulated address, so
// arbitrary insert orders and splits/merges work.
//
// Memory accounting: node slots are backed by *chunked* simulated
// reservations that grow on demand (kChunkNodes slots at a time), and
// footprint_bytes() reports exactly the reserved bytes — so what the
// memory model charges against the address space and what the ingest
// path reports as delta memory agree. num_nodes() * node_bytes is the
// live-node payload within that reservation.
class DynamicBTree {
 public:
  struct Options {
    uint32_t node_bytes = 4096;  // same node budget as the paper's B+tree
    // Node-slot budget. A full tree refuses further inserts with
    // ResourceExhausted (it never aborts), which is what lets a serving
    // layer shed the write or trigger a merge instead of dying.
    uint64_t max_nodes = uint64_t{1} << 21;
  };

  // Bounds enforced by ValidateOptions (and CHECKed by the constructor).
  static constexpr uint32_t kMinNodeBytes = 256;
  static constexpr uint32_t kMaxNodeBytes = uint32_t{1} << 20;
  static constexpr uint64_t kMinMaxNodes = 16;
  static constexpr uint64_t kMaxMaxNodes = uint64_t{1} << 28;

  // Validates the knobs against the bounds above. Fallible factories
  // (e.g. index::DeltaIndex) call this and propagate the Status; direct
  // construction with invalid options is a programming error (CHECK).
  static Status ValidateOptions(const Options& options);

  DynamicBTree(mem::AddressSpace* space, const Options& options);
  DynamicBTree(mem::AddressSpace* space);

  DynamicBTree(const DynamicBTree&) = delete;
  DynamicBTree& operator=(const DynamicBTree&) = delete;
  ~DynamicBTree();

  using Key = workload::Key;

  // CPU-side maintenance (no GPU traffic is charged).
  // Inserts key -> value; overwrites the value if the key exists.
  // Returns ResourceExhausted when the node budget cannot cover the
  // insert's worst-case splits (height() + 1 fresh nodes); the tree is
  // left unchanged in that case.
  Status Insert(Key key, uint64_t value);
  // Removes the key; returns false if absent. Never allocates.
  bool Erase(Key key);
  // Functional point lookup (CPU side).
  std::optional<uint64_t> Find(Key key) const;

  // Resets to an empty tree but keeps the reserved node chunks, so a
  // drained delta index reuses its simulated memory instead of leaking
  // reservations on every merge cycle.
  void Clear();

  // In-order traversal of all (key, value) pairs (ascending key order).
  // Used by the delta-merge path to snapshot the tree's contents.
  void Visit(const std::function<void(Key, uint64_t)>& fn) const;

  uint64_t size() const { return size_; }
  int height() const;
  uint64_t num_nodes() const { return num_nodes_; }
  // Reserved simulated bytes (chunked; see class comment).
  uint64_t footprint_bytes() const { return reserved_nodes_ * node_bytes_; }
  uint64_t max_nodes() const { return max_nodes_; }
  // Node slots an Insert can still draw on (free list + unallocated).
  uint64_t slots_available() const {
    return free_slots_.size() + (max_nodes_ - next_node_slot_);
  }

  // SIMT lookup of up to 32 keys (GPU side, charges coalesced gathers).
  // out_value[lane] receives the value for found lanes; returns the
  // found-mask.
  uint32_t LookupWarp(sim::Warp& warp, const Key* keys, uint32_t mask,
                      uint64_t* out_value) const;

  // Validates all tree invariants (key order, fill bounds, uniform leaf
  // depth, parent/child key consistency); CHECK-fails on violation.
  // Exposed for tests.
  void CheckInvariants() const;

 private:
  struct Node;

  Node* AllocateNode(bool leaf);
  void FreeNode(Node* node);
  void DestroySubtree(Node* node);

  // Simulated address of a node's slot within the chunked reservations.
  mem::VirtAddr NodeAddr(const Node* node) const;

  // Splits `node` (which is full); `parent` receives the new separator.
  // Root splits grow the tree.
  void SplitChild(Node* parent, int child_index);

  void InsertNonFull(Node* node, Key key, uint64_t value);

  // Rebalances `node`'s child at `child_index` if it underflowed
  // (borrow from a sibling or merge).
  void FixUnderflow(Node* parent, int child_index);

  bool EraseRecursive(Node* node, Key key);

  void VisitSubtree(const Node* node,
                    const std::function<void(Key, uint64_t)>& fn) const;

  void CheckSubtree(const Node* node, const Node* root, Key lower,
                    bool has_lower, Key upper, bool has_upper,
                    int depth, int leaf_depth) const;
  int LeafDepth() const;

  mem::AddressSpace* space_;
  uint32_t node_bytes_;
  uint64_t max_nodes_;
  uint32_t leaf_capacity_;   // max keys per leaf
  uint32_t inner_capacity_;  // max keys per inner node
  // Chunked node-slot reservations: slot s lives in
  // regions_[s / chunk_nodes_] at offset (s % chunk_nodes_) * node_bytes.
  std::vector<mem::Region> regions_;
  uint64_t chunk_nodes_;
  uint64_t reserved_nodes_ = 0;
  uint64_t next_node_slot_ = 0;
  std::vector<uint64_t> free_slots_;
  Node* root_ = nullptr;
  uint64_t size_ = 0;
  uint64_t num_nodes_ = 0;
};

}  // namespace gpujoin::index

#endif  // GPUJOIN_INDEX_DYNAMIC_BTREE_H_
