#include "index/spline.h"

#include <algorithm>
#include <cmath>

#include "util/bit_util.h"
#include "util/check.h"
#include "util/rng.h"

namespace gpujoin::index {

std::vector<SplinePoint> BuildGreedySplinePoints(
    const workload::KeyColumn& column, uint64_t max_error) {
  const uint64_t n = column.size();
  GPUJOIN_CHECK(n > 0);
  std::vector<SplinePoint> points;
  points.push_back({column.key_at(0), 0});
  if (n == 1) return points;

  // Corridor state: last emitted knot, the previous CDF point, and the
  // admissible slope interval.
  SplinePoint base = points[0];
  SplinePoint prev = base;
  double slope_lo = 0;
  double slope_hi = 0;
  bool corridor_open = false;
  const double err = static_cast<double>(max_error);

  for (uint64_t i = 1; i < n; ++i) {
    const SplinePoint cur{column.key_at(i), i};
    const double dx = static_cast<double>(cur.key - base.key);
    const double dy = static_cast<double>(cur.pos - base.pos);
    GPUJOIN_DCHECK(dx > 0) << "keys must be strictly increasing";
    const double slope = dy / dx;
    const double lo_cand = (dy - err) / dx;
    const double hi_cand = (dy + err) / dx;

    if (!corridor_open) {
      slope_lo = lo_cand;
      slope_hi = hi_cand;
      corridor_open = true;
    } else if (slope < slope_lo || slope > slope_hi) {
      // cur leaves the corridor: the previous point becomes a knot, and
      // the corridor restarts from there towards cur.
      points.push_back(prev);
      base = prev;
      const double ndx = static_cast<double>(cur.key - base.key);
      const double ndy = static_cast<double>(cur.pos - base.pos);
      slope_lo = (ndy - err) / ndx;
      slope_hi = (ndy + err) / ndx;
    } else {
      slope_lo = std::max(slope_lo, lo_cand);
      slope_hi = std::min(slope_hi, hi_cand);
    }
    prev = cur;
  }
  points.push_back({column.key_at(n - 1), n - 1});
  return points;
}

GreedySpline::GreedySpline(mem::AddressSpace* space,
                           const workload::KeyColumn& column,
                           uint64_t max_error)
    : max_error_(std::max<uint64_t>(1, max_error)) {
  std::vector<SplinePoint> pts = BuildGreedySplinePoints(column, max_error_);
  points_ = mem::SimArray<SplinePoint>(space, pts.size(),
                                       mem::MemKind::kHost, "spline.points");
  std::copy(pts.begin(), pts.end(), points_.begin());
}

UniformSpline::UniformSpline(mem::AddressSpace* space,
                             const workload::KeyColumn* column,
                             uint64_t interval)
    : column_(column), interval_(interval) {
  GPUJOIN_CHECK(interval >= 2);
  const uint64_t n = column_->size();
  GPUJOIN_CHECK(n >= 2) << "uniform spline needs at least two keys";
  num_points_ = bits::CeilDiv(n - 1, interval_) + 1;
  region_ = space->Reserve(num_points_ * sizeof(SplinePoint),
                           mem::MemKind::kHost, "spline.points");
  max_error_ = EstimateError();
}

uint64_t UniformSpline::point_pos(uint64_t i) const {
  GPUJOIN_DCHECK(i < num_points_);
  return std::min(i * interval_, column_->size() - 1);
}

uint64_t UniformSpline::EstimateError() const {
  // Samples segments and interior positions, measuring the deviation of
  // linear interpolation from the true position. The result only sizes
  // the search window; correctness is independent of it.
  Xoshiro256 rng(0xec0de);
  uint64_t worst = 0;
  const uint64_t segments = num_points_ - 1;
  const int num_segment_samples =
      static_cast<int>(std::min<uint64_t>(64, segments));
  for (int s = 0; s < num_segment_samples; ++s) {
    const uint64_t seg = rng.NextBounded(segments);
    const uint64_t lo_pos = point_pos(seg);
    const uint64_t hi_pos = point_pos(seg + 1);
    const Key lo_key = column_->key_at(lo_pos);
    const Key hi_key = column_->key_at(hi_pos);
    const double slope = static_cast<double>(hi_pos - lo_pos) /
                         static_cast<double>(hi_key - lo_key);
    const int probes =
        static_cast<int>(std::min<uint64_t>(16, hi_pos - lo_pos));
    for (int p = 0; p < probes; ++p) {
      const uint64_t pos = lo_pos + 1 + rng.NextBounded(hi_pos - lo_pos - 1 + 1);
      const Key key = column_->key_at(std::min(pos, hi_pos));
      const double est =
          static_cast<double>(lo_pos) +
          slope * static_cast<double>(key - lo_key);
      const double diff =
          std::fabs(est - static_cast<double>(std::min(pos, hi_pos)));
      worst = std::max(worst, static_cast<uint64_t>(std::ceil(diff)));
    }
  }
  // Safety margin: doubling covers unsampled segments; the lookup falls
  // back to the full segment when the window misses.
  return std::max<uint64_t>(1, 2 * worst);
}

}  // namespace gpujoin::index
