#ifndef GPUJOIN_INDEX_BINARY_SEARCH_H_
#define GPUJOIN_INDEX_BINARY_SEARCH_H_

#include "index/index.h"

namespace gpujoin::index {

// Baseline "index": a SIMT binary search directly on the sorted column.
// No persistent state; every traversal step is a data-dependent gather
// into CPU memory. Each lane halves its own [lo, hi) range per step, so a
// warp of random probe keys touches up to 32 distinct cachelines per step
// — the worst case for the GPU TLB once the column outgrows the TLB range
// (paper Sec. 3.3.2).
class BinarySearchIndex : public Index {
 public:
  explicit BinarySearchIndex(const workload::KeyColumn* column)
      : column_(column) {}

  std::string name() const override { return "binary_search"; }
  const workload::KeyColumn& column() const override { return *column_; }
  uint64_t footprint_bytes() const override { return 0; }

  uint32_t LookupWarp(sim::Warp& warp, const Key* keys, uint32_t mask,
                      uint64_t* out_pos) const override;

 private:
  const workload::KeyColumn* column_;
};

}  // namespace gpujoin::index

#endif  // GPUJOIN_INDEX_BINARY_SEARCH_H_
