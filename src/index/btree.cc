#include "index/btree.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/bit_util.h"
#include "util/check.h"

namespace gpujoin::index {

BTreeIndex::BTreeIndex(mem::AddressSpace* space,
                       const workload::KeyColumn* column)
    : BTreeIndex(space, column, Options()) {}

BTreeIndex::BTreeIndex(mem::AddressSpace* space,
                       const workload::KeyColumn* column,
                       const Options& options)
    : column_(column), node_bytes_(options.node_bytes) {
  GPUJOIN_CHECK(node_bytes_ >= 256) << "node too small";
  GPUJOIN_CHECK(options.fill_factor > 0.1 && options.fill_factor <= 1.0);

  // Leaf: header + keys (positions implicit). Inner: header + separator
  // keys + child ids (one more child than separators).
  const uint32_t leaf_capacity = (node_bytes_ - kHeaderBytes) / 8;
  const uint32_t inner_capacity = (node_bytes_ - kHeaderBytes - 8) / 16;
  keys_per_leaf_ = std::max<uint32_t>(
      1, static_cast<uint32_t>(leaf_capacity * options.fill_factor));
  const uint32_t inner_keys = std::max<uint32_t>(
      2, static_cast<uint32_t>(inner_capacity * options.fill_factor));
  fanout_ = inner_keys + 1;

  const uint64_t n = column_->size();
  level_counts_.push_back(bits::CeilDiv(n, keys_per_leaf_));
  while (level_counts_.back() > 1) {
    level_counts_.push_back(bits::CeilDiv(level_counts_.back(), fanout_));
  }

  leaves_per_node_.resize(level_counts_.size());
  level_node_offset_.resize(level_counts_.size());
  uint64_t offset = 0;
  uint64_t leaves = 1;
  for (size_t l = 0; l < level_counts_.size(); ++l) {
    leaves_per_node_[l] = leaves;
    leaves *= fanout_;
    level_node_offset_[l] = offset;
    offset += level_counts_[l];
  }
  total_nodes_ = offset;
  region_ = space->Reserve(total_nodes_ * node_bytes_, mem::MemKind::kHost,
                           "btree.nodes");
}

mem::VirtAddr BTreeIndex::NodeAddr(int level, uint64_t node) const {
  GPUJOIN_DCHECK(level >= 0 && level < height());
  GPUJOIN_DCHECK(node < level_counts_[level]);
  return region_.base +
         (level_node_offset_[level] + node) * uint64_t{node_bytes_};
}

mem::VirtAddr BTreeIndex::LeafKeySlotAddr(uint64_t leaf,
                                          uint32_t slot) const {
  return NodeAddr(0, leaf) + kHeaderBytes + uint64_t{slot} * 8;
}

mem::VirtAddr BTreeIndex::InnerKeySlotAddr(int level, uint64_t node,
                                           uint32_t slot) const {
  return NodeAddr(level, node) + kHeaderBytes + uint64_t{slot} * 8;
}

uint64_t BTreeIndex::FirstPosition(int level, uint64_t node) const {
  return node * leaves_per_node_[level] * keys_per_leaf_;
}

uint32_t BTreeIndex::LeafKeyCount(uint64_t leaf) const {
  const uint64_t n = column_->size();
  const uint64_t first = leaf * keys_per_leaf_;
  GPUJOIN_DCHECK(first < n);
  return static_cast<uint32_t>(
      std::min<uint64_t>(keys_per_leaf_, n - first));
}

Key BTreeIndex::LeafKey(uint64_t leaf, uint32_t slot) const {
  GPUJOIN_DCHECK(slot < LeafKeyCount(leaf));
  return column_->key_at(leaf * keys_per_leaf_ + slot);
}

uint32_t BTreeIndex::InnerChildCount(int level, uint64_t node) const {
  GPUJOIN_DCHECK(level >= 1);
  const uint64_t below = level_counts_[level - 1];
  const uint64_t first_child = node * fanout_;
  GPUJOIN_DCHECK(first_child < below);
  return static_cast<uint32_t>(
      std::min<uint64_t>(fanout_, below - first_child));
}

Key BTreeIndex::InnerSeparator(int level, uint64_t node, uint32_t sep) const {
  // Separator `sep` is the first key of child sep+1's subtree.
  GPUJOIN_DCHECK(sep + 1 < InnerChildCount(level, node));
  const uint64_t child = node * fanout_ + sep + 1;
  const uint64_t pos = FirstPosition(level - 1, child);
  GPUJOIN_DCHECK(pos < column_->size());
  return column_->key_at(pos);
}

uint32_t BTreeIndex::LookupWarp(sim::Warp& warp, const Key* keys,
                                uint32_t mask, uint64_t* out_pos) const {
  constexpr int kW = sim::Warp::kWidth;
  std::array<uint64_t, kW> node{};
  std::array<mem::VirtAddr, kW> addrs{};
  std::array<uint32_t, kW> lo{};
  std::array<uint32_t, kW> hi{};

  // Descend inner levels in lock-step (all lanes share the tree height).
  for (int level = height() - 1; level >= 1; --level) {
    // Node header (key count).
    for (int lane = 0; lane < kW; ++lane) {
      if (mask & (1u << lane)) addrs[lane] = NodeAddr(level, node[lane]);
    }
    warp.Gather(addrs.data(), mask, kHeaderBytes);

    // Lock-step binary search over the separators.
    for (int lane = 0; lane < kW; ++lane) {
      if (!(mask & (1u << lane))) continue;
      lo[lane] = 0;
      hi[lane] = InnerChildCount(level, node[lane]) - 1;  // separator count
    }
    uint32_t active = mask;
    while (active != 0) {
      uint32_t issue = 0;
      std::array<uint32_t, kW> mid{};
      for (int lane = 0; lane < kW; ++lane) {
        if (!(active & (1u << lane))) continue;
        if (lo[lane] >= hi[lane]) {
          active &= ~(1u << lane);
          continue;
        }
        mid[lane] = lo[lane] + (hi[lane] - lo[lane]) / 2;
        addrs[lane] = InnerKeySlotAddr(level, node[lane], mid[lane]);
        issue |= 1u << lane;
      }
      if (issue == 0) break;
      warp.Gather(addrs.data(), issue, sizeof(Key));
      for (int lane = 0; lane < kW; ++lane) {
        if (!(issue & (1u << lane))) continue;
        if (InnerSeparator(level, node[lane], mid[lane]) <= keys[lane]) {
          lo[lane] = mid[lane] + 1;
        } else {
          hi[lane] = mid[lane];
        }
      }
    }
    // lo = number of separators <= key = child index. Read the child id
    // slot (in a real node the child pointer sits after the keys; the
    // implicit tree computes it, but the access still happens).
    for (int lane = 0; lane < kW; ++lane) {
      if (!(mask & (1u << lane))) continue;
      const uint32_t inner_keys = fanout_ - 1;
      addrs[lane] = NodeAddr(level, node[lane]) + kHeaderBytes +
                    uint64_t{inner_keys} * 8 + uint64_t{lo[lane]} * 8;
      node[lane] = node[lane] * fanout_ + lo[lane];
    }
    warp.Gather(addrs.data(), mask, 8);
  }

  // Leaf level: header, binary search, value slot.
  for (int lane = 0; lane < kW; ++lane) {
    if (mask & (1u << lane)) addrs[lane] = NodeAddr(0, node[lane]);
  }
  warp.Gather(addrs.data(), mask, kHeaderBytes);

  for (int lane = 0; lane < kW; ++lane) {
    if (!(mask & (1u << lane))) continue;
    lo[lane] = 0;
    hi[lane] = LeafKeyCount(node[lane]);
  }
  uint32_t active = mask;
  while (active != 0) {
    uint32_t issue = 0;
    std::array<uint32_t, kW> mid{};
    for (int lane = 0; lane < kW; ++lane) {
      if (!(active & (1u << lane))) continue;
      if (lo[lane] >= hi[lane]) {
        active &= ~(1u << lane);
        continue;
      }
      mid[lane] = lo[lane] + (hi[lane] - lo[lane]) / 2;
      addrs[lane] = LeafKeySlotAddr(node[lane], mid[lane]);
      issue |= 1u << lane;
    }
    if (issue == 0) break;
    warp.Gather(addrs.data(), issue, sizeof(Key));
    for (int lane = 0; lane < kW; ++lane) {
      if (!(issue & (1u << lane))) continue;
      if (LeafKey(node[lane], mid[lane]) < keys[lane]) {
        lo[lane] = mid[lane] + 1;
      } else {
        hi[lane] = mid[lane];
      }
    }
  }

  const uint64_t n = column_->size();
  uint32_t found = 0;
  for (int lane = 0; lane < kW; ++lane) {
    if (!(mask & (1u << lane))) continue;
    // Positions are implicit in the bulk-loaded layout: leaf j covers
    // column positions [j * keys_per_leaf, ...).
    const uint64_t pos = node[lane] * keys_per_leaf_ + lo[lane];
    out_pos[lane] = pos;
    if (pos < n && lo[lane] < LeafKeyCount(node[lane]) &&
        LeafKey(node[lane], lo[lane]) == keys[lane]) {
      found |= 1u << lane;
    }
  }
  return found;
}

}  // namespace gpujoin::index
