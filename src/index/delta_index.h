#ifndef GPUJOIN_INDEX_DELTA_INDEX_H_
#define GPUJOIN_INDEX_DELTA_INDEX_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "index/dynamic_btree.h"
#include "mem/address_space.h"
#include "sim/gpu.h"
#include "util/status.h"
#include "workload/key_column.h"

namespace gpujoin::index {

// The write-absorbing side of the HTAP split: a DynamicBTree that records
// upserts and deletes against a read-only base, FliX-style (PAPERS.md).
// Deletes are *tombstones* — an entry whose value has kTombstoneBit set —
// so a delta hit always shadows the static index underneath it, whether
// the hit carries a value or a deletion.
//
// The delta never touches the base: reconciliation (delta-over-static)
// happens in HybridIndex, and a background merge drains the delta into
// the static side via Snapshot() + Clear().
class DeltaIndex {
 public:
  using Key = workload::Key;

  struct Options {
    DynamicBTree::Options tree;
  };

  // High bit of the value tags a tombstone; payload values must stay
  // below it (CHECKed on Upsert).
  static constexpr uint64_t kTombstoneBit = uint64_t{1} << 63;

  struct Entry {
    uint64_t value = 0;  // payload; meaningless when tombstone
    bool tombstone = false;
  };

  struct SnapshotEntry {
    Key key;
    uint64_t value;  // tagged: kTombstoneBit marks a delete
  };

  // Fallible factory: validates the tree options.
  static Result<std::unique_ptr<DeltaIndex>> Create(mem::AddressSpace* space,
                                                    const Options& options);

  DeltaIndex(const DeltaIndex&) = delete;
  DeltaIndex& operator=(const DeltaIndex&) = delete;

  // Records key -> value (insert or update; overwrites any prior entry,
  // including a tombstone). ResourceExhausted when the tree is full.
  Status Upsert(Key key, uint64_t value);

  // Records a delete tombstone for the key (overwrites any prior entry).
  // ResourceExhausted when the tree is full.
  Status Remove(Key key);

  // CPU-side point read of the delta alone. nullopt = the delta has no
  // opinion (fall through to the static side).
  std::optional<Entry> Find(Key key) const;

  // SIMT lookup (GPU side). For each lane in `mask` with a delta entry:
  // sets the lane in the returned hit-mask, writes the payload to
  // out_value[lane], and sets the lane in *tombstone_mask if the entry
  // is a tombstone. Lanes outside the hit-mask fall through to the
  // static index.
  uint32_t LookupWarp(sim::Warp& warp, const Key* keys, uint32_t mask,
                      uint64_t* out_value, uint32_t* tombstone_mask) const;

  // All entries in ascending key order, values still tagged. Used by the
  // merge path; the delta keeps serving while the snapshot is consumed.
  std::vector<SnapshotEntry> Snapshot() const;

  // Drops every entry, keeping the tree's reserved memory.
  void Clear();

  uint64_t entries() const { return tree_->size(); }
  uint64_t live() const { return live_; }
  uint64_t tombstones() const { return tombstones_; }
  uint64_t footprint_bytes() const { return tree_->footprint_bytes(); }
  const DynamicBTree& tree() const { return *tree_; }

 private:
  explicit DeltaIndex(std::unique_ptr<DynamicBTree> tree);

  Status Put(Key key, uint64_t tagged_value);

  std::unique_ptr<DynamicBTree> tree_;
  uint64_t live_ = 0;        // entries carrying a value
  uint64_t tombstones_ = 0;  // entries carrying a delete
};

}  // namespace gpujoin::index

#endif  // GPUJOIN_INDEX_DELTA_INDEX_H_
