#include "index/index.h"

namespace gpujoin::index {

const char* IndexTypeName(IndexType type) {
  switch (type) {
    case IndexType::kBinarySearch:
      return "binary_search";
    case IndexType::kBTree:
      return "btree";
    case IndexType::kHarmonia:
      return "harmonia";
    case IndexType::kRadixSpline:
      return "radix_spline";
  }
  return "unknown";
}

}  // namespace gpujoin::index
