#ifndef GPUJOIN_INDEX_HYBRID_INDEX_H_
#define GPUJOIN_INDEX_HYBRID_INDEX_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "index/delta_index.h"
#include "index/index.h"
#include "mem/address_space.h"
#include "sim/gpu.h"
#include "util/status.h"
#include "workload/key_column.h"

namespace gpujoin::index {

// One shard's HTAP read path: a read-only base column (served by one of
// the static indexes) plus the mutable layers stacked over it, in
// precedence order:
//
//   active delta  — absorbs live upserts/deletes
//   frozen delta  — the previous active, snapshotted by an in-flight merge
//   overlay       — sorted array of all previously merged delta entries
//   base          — the static column (value of base key = its position)
//
// A background merge runs in two simulated steps so writes never stall:
// BeginMerge() freezes the current active delta (role swap; the empty
// other tree starts absorbing writes) and returns the work to charge on
// the simulated clock; CompleteMerge() folds the frozen entries into the
// overlay — frozen wins per key, and tombstones for keys absent from the
// base are compacted away — then bumps the epoch. Readers between the two
// calls see the frozen layer, so no admitted lookup ever misses a write.
//
// Deletes shadow at every level: a tombstone in any layer hides matches
// in all layers below it.
class HybridIndex {
 public:
  using Key = workload::Key;

  struct Options {
    DeltaIndex::Options delta;
    // Simulated bytes a merge must stream to rebuild the shard's static
    // side (typically the shard's share of R). 0 = only the delta and
    // overlay entries are charged.
    uint64_t merge_scan_bytes = 0;
  };

  // The simulated work of one background merge, charged by the caller
  // through sim::CostModel::HostStreamSeconds.
  struct MergeWork {
    uint64_t read_bytes = 0;
    uint64_t write_bytes = 0;
    uint64_t frozen_entries = 0;
  };

  static Result<std::unique_ptr<HybridIndex>> Create(
      mem::AddressSpace* space, const workload::KeyColumn* base,
      const Options& options);

  HybridIndex(const HybridIndex&) = delete;
  HybridIndex& operator=(const HybridIndex&) = delete;

  // Writes go to the active delta. ResourceExhausted when it is full.
  Status Upsert(Key key, uint64_t value);
  Status Remove(Key key);

  // Reconciled CPU-side point read. nullopt = key absent (or deleted).
  // Base keys read as their position; delta/overlay entries read as
  // their payload value.
  std::optional<uint64_t> Find(Key key) const;

  // Reconciled SIMT read: consults active/frozen deltas, the overlay and
  // finally `static_index` (which must serve the same base column),
  // charging each layer's gathers. out_value[lane] as for Find; returns
  // the found-mask.
  uint32_t ProbeWarp(sim::Warp& warp, const Index& static_index,
                     const Key* keys, uint32_t mask,
                     uint64_t* out_value) const;

  // Freezes the active delta and returns the merge's simulated work.
  // CHECK-fails if a merge is already in flight (callers serialize
  // merges per shard).
  MergeWork BeginMerge();

  // Folds the frozen delta into the overlay and opens the next epoch.
  // CHECK-fails if no merge is in flight.
  void CompleteMerge();

  bool merge_in_progress() const { return merge_in_progress_; }
  uint64_t epoch() const { return epoch_; }

  uint64_t delta_entries() const {
    return active_->entries() + frozen_->entries();
  }
  uint64_t delta_bytes() const {
    return active_->footprint_bytes() + frozen_->footprint_bytes();
  }
  uint64_t overlay_entries() const { return overlay_keys_.size(); }

  // Extra dependent cachelines one reconciled lookup touches on top of
  // the static index probe: the two delta-tree descents plus the overlay
  // binary search. 0 when every mutable layer is empty.
  uint32_t probe_depth_lines() const;

  const workload::KeyColumn& base() const { return *base_; }
  const DeltaIndex& active() const { return *active_; }
  const DeltaIndex& frozen() const { return *frozen_; }

 private:
  HybridIndex(mem::AddressSpace* space, const workload::KeyColumn* base,
              const Options& options, std::unique_ptr<DeltaIndex> a,
              std::unique_ptr<DeltaIndex> b);

  // Overlay probe; value still tagged. nullopt = no overlay entry.
  std::optional<uint64_t> OverlayFind(Key key) const;
  // Base probe: position if the key exists in the base column.
  std::optional<uint64_t> BaseFind(Key key) const;

  mem::AddressSpace* space_;
  const workload::KeyColumn* base_;
  Options options_;

  std::unique_ptr<DeltaIndex> active_;
  std::unique_ptr<DeltaIndex> frozen_;
  bool merge_in_progress_ = false;
  uint64_t epoch_ = 0;

  // Sorted merged entries; values tagged with DeltaIndex::kTombstoneBit.
  std::vector<Key> overlay_keys_;
  std::vector<uint64_t> overlay_values_;
  mem::Region overlay_region_{};  // re-reserved per merge ("hybrid.overlay")
};

}  // namespace gpujoin::index

#endif  // GPUJOIN_INDEX_HYBRID_INDEX_H_
