#include "index/hybrid_index.h"

#include <algorithm>
#include <array>
#include <utility>

#include "util/check.h"

namespace gpujoin::index {

namespace {
constexpr uint64_t kTomb = DeltaIndex::kTombstoneBit;
// Overlay entry layout: 8-byte key + 8-byte tagged value.
constexpr uint64_t kOverlayEntryBytes = 16;

uint32_t CeilLog2(uint64_t n) {
  uint32_t bits = 0;
  while ((uint64_t{1} << bits) < n) ++bits;
  return bits;
}
}  // namespace

Result<std::unique_ptr<HybridIndex>> HybridIndex::Create(
    mem::AddressSpace* space, const workload::KeyColumn* base,
    const Options& options) {
  auto a = DeltaIndex::Create(space, options.delta);
  if (!a.ok()) return a.status();
  auto b = DeltaIndex::Create(space, options.delta);
  if (!b.ok()) return b.status();
  return std::unique_ptr<HybridIndex>(
      new HybridIndex(space, base, options, std::move(a).value(),
                      std::move(b).value()));
}

HybridIndex::HybridIndex(mem::AddressSpace* space,
                         const workload::KeyColumn* base,
                         const Options& options,
                         std::unique_ptr<DeltaIndex> a,
                         std::unique_ptr<DeltaIndex> b)
    : space_(space),
      base_(base),
      options_(options),
      active_(std::move(a)),
      frozen_(std::move(b)) {}

Status HybridIndex::Upsert(Key key, uint64_t value) {
  return active_->Upsert(key, value);
}

Status HybridIndex::Remove(Key key) { return active_->Remove(key); }

std::optional<uint64_t> HybridIndex::OverlayFind(Key key) const {
  auto it =
      std::lower_bound(overlay_keys_.begin(), overlay_keys_.end(), key);
  if (it == overlay_keys_.end() || *it != key) return std::nullopt;
  return overlay_values_[it - overlay_keys_.begin()];
}

std::optional<uint64_t> HybridIndex::BaseFind(Key key) const {
  const uint64_t pos = base_->LowerBound(key);
  if (pos >= base_->size() || base_->key_at(pos) != key) return std::nullopt;
  return pos;
}

std::optional<uint64_t> HybridIndex::Find(Key key) const {
  // Precedence: active over frozen over overlay over base; the first
  // layer with an opinion wins, and a tombstone's opinion is "absent".
  for (const DeltaIndex* delta : {active_.get(), frozen_.get()}) {
    const auto e = delta->Find(key);
    if (e.has_value()) {
      if (e->tombstone) return std::nullopt;
      return e->value;
    }
  }
  const auto tagged = OverlayFind(key);
  if (tagged.has_value()) {
    if (*tagged & kTomb) return std::nullopt;
    return *tagged & ~kTomb;
  }
  return BaseFind(key);
}

uint32_t HybridIndex::ProbeWarp(sim::Warp& warp, const Index& static_index,
                                const Key* keys, uint32_t mask,
                                uint64_t* out_value) const {
  constexpr int kW = sim::Warp::kWidth;
  uint32_t resolved = 0;  // lanes some layer has decided (found or dead)
  uint32_t found = 0;

  // Delta layers, highest precedence first. Every undecided lane probes.
  for (const DeltaIndex* delta : {active_.get(), frozen_.get()}) {
    const uint32_t probe = mask & ~resolved;
    if (probe == 0 || delta->entries() == 0) continue;
    std::array<uint64_t, kW> value{};
    uint32_t dead = 0;
    const uint32_t hits =
        delta->LookupWarp(warp, keys, probe, value.data(), &dead);
    resolved |= hits;
    for (int lane = 0; lane < kW; ++lane) {
      if (!(hits & (1u << lane)) || (dead & (1u << lane))) continue;
      out_value[lane] = value[lane];
      found |= 1u << lane;
    }
  }

  // Overlay: lock-step binary search over the sorted entry array.
  if (!overlay_keys_.empty() && (mask & ~resolved) != 0) {
    const uint32_t probe = mask & ~resolved;
    std::array<uint64_t, kW> lo{};
    std::array<uint64_t, kW> hi{};
    std::array<mem::VirtAddr, kW> addrs{};
    for (int lane = 0; lane < kW; ++lane) {
      if (probe & (1u << lane)) hi[lane] = overlay_keys_.size();
    }
    uint32_t active_lanes = probe;
    while (active_lanes != 0) {
      uint32_t issue = 0;
      std::array<uint64_t, kW> mid{};
      for (int lane = 0; lane < kW; ++lane) {
        if (!(active_lanes & (1u << lane))) continue;
        if (lo[lane] >= hi[lane]) {
          active_lanes &= ~(1u << lane);
          continue;
        }
        mid[lane] = lo[lane] + (hi[lane] - lo[lane]) / 2;
        addrs[lane] = overlay_region_.base + mid[lane] * kOverlayEntryBytes;
        issue |= 1u << lane;
      }
      if (issue == 0) break;
      warp.Gather(addrs.data(), issue, sizeof(Key));
      for (int lane = 0; lane < kW; ++lane) {
        if (!(issue & (1u << lane))) continue;
        if (overlay_keys_[mid[lane]] < keys[lane]) {
          lo[lane] = mid[lane] + 1;
        } else {
          hi[lane] = mid[lane];
        }
      }
    }
    uint32_t value_mask = 0;
    for (int lane = 0; lane < kW; ++lane) {
      if (!(probe & (1u << lane))) continue;
      const uint64_t pos = lo[lane];
      if (pos >= overlay_keys_.size() || overlay_keys_[pos] != keys[lane]) {
        continue;
      }
      resolved |= 1u << lane;
      const uint64_t tagged = overlay_values_[pos];
      if (!(tagged & kTomb)) {
        out_value[lane] = tagged & ~kTomb;
        found |= 1u << lane;
        addrs[lane] = overlay_region_.base + pos * kOverlayEntryBytes + 8;
        value_mask |= 1u << lane;
      }
    }
    if (value_mask != 0) warp.Gather(addrs.data(), value_mask, 8);
  }

  // Base fallthrough through the shard's static index.
  const uint32_t fall = mask & ~resolved;
  if (fall != 0) {
    std::array<uint64_t, kW> pos{};
    const uint32_t present =
        static_index.LookupWarp(warp, keys, fall, pos.data());
    for (int lane = 0; lane < kW; ++lane) {
      if (!(present & (1u << lane))) continue;
      out_value[lane] = pos[lane];
      found |= 1u << lane;
    }
  }
  return found;
}

HybridIndex::MergeWork HybridIndex::BeginMerge() {
  GPUJOIN_CHECK(!merge_in_progress_) << "merge already in flight";
  GPUJOIN_CHECK(frozen_->entries() == 0)
      << "frozen delta not drained by the previous merge";
  std::swap(active_, frozen_);
  merge_in_progress_ = true;

  MergeWork work;
  const uint64_t entry_bytes =
      (frozen_->entries() + overlay_keys_.size()) * kOverlayEntryBytes;
  work.read_bytes = options_.merge_scan_bytes + entry_bytes;
  work.write_bytes = options_.merge_scan_bytes + entry_bytes;
  work.frozen_entries = frozen_->entries();
  return work;
}

void HybridIndex::CompleteMerge() {
  GPUJOIN_CHECK(merge_in_progress_) << "no merge in flight";
  const std::vector<DeltaIndex::SnapshotEntry> snap = frozen_->Snapshot();

  // Merge-fold: frozen entries win over overlay entries on equal keys,
  // and tombstones whose key the base never held are compacted away (no
  // static match left to shadow).
  std::vector<Key> keys;
  std::vector<uint64_t> values;
  keys.reserve(overlay_keys_.size() + snap.size());
  values.reserve(overlay_keys_.size() + snap.size());
  auto emit = [&](Key key, uint64_t tagged) {
    if ((tagged & kTomb) && !BaseFind(key).has_value()) return;
    keys.push_back(key);
    values.push_back(tagged);
  };
  size_t i = 0;  // snap cursor
  size_t j = 0;  // overlay cursor
  while (i < snap.size() || j < overlay_keys_.size()) {
    if (j >= overlay_keys_.size() ||
        (i < snap.size() && snap[i].key <= overlay_keys_[j])) {
      if (j < overlay_keys_.size() && snap[i].key == overlay_keys_[j]) ++j;
      emit(snap[i].key, snap[i].value);
      ++i;
    } else {
      emit(overlay_keys_[j], overlay_values_[j]);
      ++j;
    }
  }
  overlay_keys_ = std::move(keys);
  overlay_values_ = std::move(values);
  if (!overlay_keys_.empty()) {
    overlay_region_ =
        space_->Reserve(overlay_keys_.size() * kOverlayEntryBytes,
                        mem::MemKind::kHost, "hybrid.overlay");
  }

  frozen_->Clear();
  merge_in_progress_ = false;
  ++epoch_;
}

uint32_t HybridIndex::probe_depth_lines() const {
  uint32_t lines = 0;
  if (active_->entries() > 0) lines += active_->tree().height();
  if (frozen_->entries() > 0) lines += frozen_->tree().height();
  lines += CeilLog2(overlay_keys_.size() + 1);
  return lines;
}

}  // namespace gpujoin::index
