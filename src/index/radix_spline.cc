#include "index/radix_spline.h"

#include <algorithm>
#include <array>

#include "util/bit_util.h"
#include "util/check.h"

namespace gpujoin::index {

namespace {

// Lock-step SIMT lower bound over the column within per-lane [lo, hi)
// ranges. Issues one coalesced gather per search step.
void WarpColumnLowerBound(sim::Warp& warp, const workload::KeyColumn& col,
                          const Key* keys, uint32_t mask, uint64_t* lo,
                          uint64_t* hi) {
  constexpr int kW = sim::Warp::kWidth;
  std::array<mem::VirtAddr, kW> addrs{};
  uint32_t active = mask;
  while (active != 0) {
    uint32_t issue = 0;
    std::array<uint64_t, kW> mid{};
    for (int lane = 0; lane < kW; ++lane) {
      if (!(active & (1u << lane))) continue;
      if (lo[lane] >= hi[lane]) {
        active &= ~(1u << lane);
        continue;
      }
      mid[lane] = lo[lane] + (hi[lane] - lo[lane]) / 2;
      addrs[lane] = col.addr_of(mid[lane]);
      issue |= 1u << lane;
    }
    if (issue == 0) break;
    warp.Gather(addrs.data(), issue, sizeof(Key));
    for (int lane = 0; lane < kW; ++lane) {
      if (!(issue & (1u << lane))) continue;
      if (col.key_at(mid[lane]) < keys[lane]) {
        lo[lane] = mid[lane] + 1;
      } else {
        hi[lane] = mid[lane];
      }
    }
  }
}

}  // namespace

std::unique_ptr<RadixSplineIndex> RadixSplineIndex::Build(
    mem::AddressSpace* space, const workload::KeyColumn* column) {
  return Build(space, column, Options());
}

std::unique_ptr<RadixSplineIndex> RadixSplineIndex::Build(
    mem::AddressSpace* space, const workload::KeyColumn* column,
    const Options& options) {
  std::unique_ptr<SplineStorage> spline;
  if (column->size() <= options.greedy_size_limit) {
    spline = std::make_unique<GreedySpline>(space, *column,
                                            options.max_error);
  } else {
    spline = std::make_unique<UniformSpline>(space, column,
                                             options.uniform_interval);
  }
  return std::make_unique<RadixSplineIndex>(space, column, std::move(spline),
                                            options.radix_bits);
}

RadixSplineIndex::RadixSplineIndex(mem::AddressSpace* space,
                                   const workload::KeyColumn* column,
                                   std::unique_ptr<SplineStorage> spline,
                                   int radix_bits)
    : column_(column), spline_(std::move(spline)) {
  GPUJOIN_CHECK(column_->min_key() >= 0)
      << "radix table requires non-negative keys";
  const Key max_key = column_->max_key();
  const int bit_width = max_key > 0 ? bits::Log2Floor(
                                          static_cast<uint64_t>(max_key)) +
                                          1
                                    : 1;
  radix_bits_ = std::min(radix_bits, bit_width);
  GPUJOIN_CHECK(radix_bits_ >= 1);
  shift_ = bit_width - radix_bits_;

  const uint64_t table_entries = (uint64_t{1} << radix_bits_) + 1;
  radix_table_ = mem::SimArray<uint64_t>(space, table_entries,
                                         mem::MemKind::kHost, "rs.radix");
  // table[p] = index of the first spline point whose key prefix >= p.
  const uint64_t np = spline_->num_points();
  uint64_t cur = 0;
  for (uint64_t p = 0; p + 1 < table_entries; ++p) {
    while (cur < np && Prefix(spline_->point_key(cur)) < p) ++cur;
    radix_table_[p] = cur;
  }
  radix_table_[table_entries - 1] = np;
}

uint64_t RadixSplineIndex::Prefix(Key key) const {
  return static_cast<uint64_t>(key) >> shift_;
}

uint32_t RadixSplineIndex::LookupWarp(sim::Warp& warp, const Key* keys,
                                      uint32_t mask,
                                      uint64_t* out_pos) const {
  constexpr int kW = sim::Warp::kWidth;
  const workload::KeyColumn& col = *column_;
  const uint64_t n = col.size();
  const uint64_t np = spline_->num_points();
  const uint64_t err = spline_->max_error();

  std::array<mem::VirtAddr, kW> addrs{};
  std::array<uint64_t, kW> point_lo{};
  std::array<uint64_t, kW> point_hi{};

  // 1. Radix table: two adjacent entries bound the spline point range.
  for (int lane = 0; lane < kW; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const uint64_t p =
        std::min(Prefix(keys[lane]), (uint64_t{1} << radix_bits_) - 1);
    addrs[lane] = radix_table_.addr_of(p);
    point_lo[lane] = radix_table_[p];
    point_hi[lane] = std::min(radix_table_[p + 1] + 1, np);
  }
  warp.Gather(addrs.data(), mask, 16);  // table[p] and table[p+1]

  // 2. Lower bound over the spline points in [point_lo, point_hi).
  uint32_t active = mask;
  while (active != 0) {
    uint32_t issue = 0;
    std::array<uint64_t, kW> mid{};
    for (int lane = 0; lane < kW; ++lane) {
      if (!(active & (1u << lane))) continue;
      if (point_lo[lane] >= point_hi[lane]) {
        active &= ~(1u << lane);
        continue;
      }
      mid[lane] = point_lo[lane] + (point_hi[lane] - point_lo[lane]) / 2;
      addrs[lane] = spline_->point_addr(mid[lane]);
      issue |= 1u << lane;
    }
    if (issue == 0) break;
    warp.Gather(addrs.data(), issue, sizeof(SplinePoint));
    for (int lane = 0; lane < kW; ++lane) {
      if (!(issue & (1u << lane))) continue;
      if (spline_->point_key(mid[lane]) < keys[lane]) {
        point_lo[lane] = mid[lane] + 1;
      } else {
        point_hi[lane] = mid[lane];
      }
    }
  }

  // 3. Interpolate the bracketing segment and search a +-err window in
  // the data. Lanes whose window missed (rare: the error bound is an
  // estimate for procedural splines) retry on the full segment.
  std::array<uint64_t, kW> lo{};
  std::array<uint64_t, kW> hi{};
  std::array<uint64_t, kW> seg_lo{};
  std::array<uint64_t, kW> seg_hi{};
  uint32_t search_mask = 0;
  for (int lane = 0; lane < kW; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const uint64_t i = point_lo[lane];
    if (i >= np) {
      out_pos[lane] = n;  // beyond the last key
      continue;
    }
    if (i == 0 || spline_->point_key(i) == keys[lane]) {
      out_pos[lane] = spline_->point_pos(i);
      if (i == 0 && spline_->point_key(0) > keys[lane]) {
        out_pos[lane] = 0;  // before the first key: lower bound is 0
      }
      continue;
    }
    const Key k0 = spline_->point_key(i - 1);
    const Key k1 = spline_->point_key(i);
    const uint64_t p0 = spline_->point_pos(i - 1);
    const uint64_t p1 = spline_->point_pos(i);
    const double slope = static_cast<double>(p1 - p0) /
                         static_cast<double>(k1 - k0);
    const double est_d =
        static_cast<double>(p0) +
        slope * static_cast<double>(keys[lane] - k0);
    const uint64_t est = static_cast<uint64_t>(est_d < 0 ? 0 : est_d);
    // True position lies in (p0, p1].
    seg_lo[lane] = p0 + 1;
    seg_hi[lane] = p1 + 1;  // half-open
    lo[lane] = std::max(seg_lo[lane], est > err ? est - err : 0);
    hi[lane] = std::min(seg_hi[lane], est + err + 1);
    if (lo[lane] >= hi[lane]) {
      lo[lane] = seg_lo[lane];
      hi[lane] = seg_hi[lane];
    }
    search_mask |= 1u << lane;
  }

  if (search_mask != 0) {
    std::array<uint64_t, kW> wlo = lo;
    std::array<uint64_t, kW> whi = hi;
    WarpColumnLowerBound(warp, col, keys, search_mask, lo.data(), hi.data());
    // Validate: a window result is correct iff it is an interior lower
    // bound or sits at a window edge that coincides with the segment edge.
    uint32_t retry = 0;
    for (int lane = 0; lane < kW; ++lane) {
      if (!(search_mask & (1u << lane))) continue;
      const uint64_t pos = lo[lane];
      const bool at_lo_edge =
          pos == wlo[lane] && wlo[lane] != seg_lo[lane];
      const bool at_hi_edge =
          pos == whi[lane] && whi[lane] != seg_hi[lane];
      if (at_lo_edge || at_hi_edge) {
        retry |= 1u << lane;
        lo[lane] = seg_lo[lane];
        hi[lane] = seg_hi[lane];
      } else {
        out_pos[lane] = pos;
      }
    }
    if (retry != 0) {
      WarpColumnLowerBound(warp, col, keys, retry, lo.data(), hi.data());
      for (int lane = 0; lane < kW; ++lane) {
        if (retry & (1u << lane)) out_pos[lane] = lo[lane];
      }
    }
  }

  // 4. Fetch the matched tuples (verification read, as in the other
  // indexes).
  uint32_t verify = 0;
  for (int lane = 0; lane < kW; ++lane) {
    if (!(mask & (1u << lane))) continue;
    if (out_pos[lane] < n) {
      addrs[lane] = col.addr_of(out_pos[lane]);
      verify |= 1u << lane;
    }
  }
  if (verify != 0) warp.Gather(addrs.data(), verify, sizeof(Key));

  uint32_t found = 0;
  for (int lane = 0; lane < kW; ++lane) {
    if (!(verify & (1u << lane))) continue;
    if (col.key_at(out_pos[lane]) == keys[lane]) found |= 1u << lane;
  }
  return found;
}

}  // namespace gpujoin::index
