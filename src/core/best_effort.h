#ifndef GPUJOIN_CORE_BEST_EFFORT_H_
#define GPUJOIN_CORE_BEST_EFFORT_H_

#include <cstdint>

#include "index/index.h"
#include "sim/gpu.h"
#include "sim/run_result.h"
#include "workload/relation.h"

namespace gpujoin::core {

// Best-effort partitioning (Zukowski, Héman & Boncz [12]) adapted to the
// out-of-core INLJ — the related-work alternative the paper contrasts its
// windowed partitioning against (Sec. 2.3).
//
// The probe stream is scattered on-the-fly into one fixed-capacity bucket
// per radix partition; whenever a bucket fills, its tuples (which all hit
// a narrow slice of the index) are joined immediately and the bucket is
// recycled. Memory stays bounded at partitions x bucket_tuples, and like
// windowed partitioning nothing is fully materialized — but results
// leave the operator out of order, bucket state is long-lived, and every
// flush pays a kernel launch.
struct BestEffortConfig {
  uint32_t bucket_tuples = 2048;
  int max_partition_bits = 11;
  int ignore_lsb = 4;
  double probe_filter_selectivity = 1.0;
};

class BestEffortInlj {
 public:
  static sim::RunResult Run(sim::Gpu& gpu, const index::Index& index,
                            const workload::ProbeRelation& s,
                            const BestEffortConfig& config);
  static sim::RunResult Run(sim::Gpu& gpu, const index::Index& index,
                            const workload::ProbeRelation& s);
};

}  // namespace gpujoin::core

#endif  // GPUJOIN_CORE_BEST_EFFORT_H_
