#ifndef GPUJOIN_CORE_EXPERIMENT_H_
#define GPUJOIN_CORE_EXPERIMENT_H_

#include <memory>
#include <string>

#include "core/inlj.h"
#include "index/btree.h"
#include "index/harmonia.h"
#include "index/index.h"
#include "index/radix_spline.h"
#include "join/hash_join.h"
#include "mem/address_space.h"
#include "obs/phase_timeline.h"
#include "sim/fault.h"
#include "sim/gpu.h"
#include "sim/run_result.h"
#include "sim/specs.h"
#include "sim/trace.h"
#include "util/status.h"
#include "util/units.h"
#include "workload/key_column.h"
#include "workload/relation.h"

namespace gpujoin::core {

// One experiment setting of the paper: a platform, a base relation R of
// `r_tuples` sorted unique keys indexed in CPU memory, and a probe
// relation S of `s_tuples` foreign keys. Used by every bench binary and
// by the examples.
struct ExperimentConfig {
  sim::PlatformSpec platform = sim::V100NvLink2();

  uint64_t r_tuples = uint64_t{1} << 26;
  uint64_t s_tuples = uint64_t{1} << 26;  // fixed at 2^26 in the paper
  // Simulated probe sample; counters extrapolate to s_tuples.
  uint64_t s_sample = uint64_t{1} << 19;
  double zipf_exponent = 0;
  uint64_t seed = 1;
  // Dense keys by default; jittered keys exercise interpolation error.
  bool jittered_keys = false;

  // Host huge-page size (the paper's machine uses 1 GiB pages and finds
  // 2 MiB approximately equal, Sec. 3.2 — the page-size ablation checks
  // this).
  uint64_t host_page_size = kGiB;

  // Usable CPU memory. The paper's machine has 256 GiB (Sec. 3.2); we
  // budget ~6% for OS / DBMS runtime. Index + relations beyond this fail
  // with ResourceExhausted — which reproduces the paper's observation
  // that the B+tree and Harmonia (whose state adds a full key copy) fit
  // at 111 GiB but not at the largest R ("size limit of R is reduced").
  uint64_t host_capacity = uint64_t{240} * kGiB;

  // Probe sampling scheme: kAuto picks thinned sampling for the
  // unpartitioned INLJ and density-preserving range-restricted sampling
  // for partitioned modes (see workload::SampleScheme). Override only
  // when a specific fidelity trade-off is wanted (e.g. the partition-bit
  // ablation forces thinned sampling so the TLB working set of wide
  // partitions stays faithful).
  enum class SampleSchemeOverride { kAuto, kThinned, kRangeRestricted };
  SampleSchemeOverride sample_scheme = SampleSchemeOverride::kAuto;

  index::IndexType index_type = index::IndexType::kRadixSpline;
  index::BTreeIndex::Options btree;
  index::HarmoniaIndex::Options harmonia;
  index::RadixSplineIndex::Options radix_spline;

  InljConfig inlj;
  join::HashJoinConfig hash_join;

  // Deterministic fault injection (sim/fault.h). All rates default to
  // zero: no injector is attached and every counter is bit-identical to
  // a build without the fault layer.
  sim::FaultConfig fault;
};

// Owns the simulated machine and data for one configuration. Build once,
// then run the INLJ and/or the hash-join baseline on identical data.
class Experiment {
 public:
  // Builds R, S and (for INLJ runs) the index; fails with
  // ResourceExhausted if host memory would be exceeded.
  static Result<std::unique_ptr<Experiment>> Create(
      const ExperimentConfig& config);

  // Runs the configured INLJ variant. Hardware state (caches, TLB) and
  // the fault injector are reset first so runs are independent and
  // mutually reproducible. Fails when an injected fault is unrecoverable
  // under the configured recovery policy. A non-null `collect` receives
  // every sample-scale match (see IndexNestedLoopJoin::Run).
  Result<sim::RunResult> RunInlj(std::vector<JoinMatch>* collect = nullptr);

  // The reset each Run* performs (hardware state, fault injector,
  // observers). Drivers that feed the simulated GPU directly — the
  // serving layer's RequestServer — call this once before their run so
  // they start from the same state as a batch run.
  void ResetForRun();

  // Runs the hash-join baseline on the same data. Fails if the hash
  // table would exceed GPU memory.
  Result<sim::RunResult> RunHashJoin();

  // Attaches an owned TraceRecorder and PhaseTimeline to the simulated
  // memory system (idempotent). Both observe simultaneously through the
  // MemoryModel's observer fan-out; subsequent runs fill
  // RunResult::phase_spans and the trace's per-region stats. Counters are
  // unaffected either way (regression-tested bit-identical).
  void EnableObservability();
  // Detaches and destroys both (no-op when not enabled).
  void DisableObservability();

  // Null unless EnableObservability() ran. The trace holds the stats of
  // the most recent run (each run resets it first).
  sim::TraceRecorder* trace_recorder() { return trace_.get(); }
  obs::PhaseTimeline* phase_timeline() { return timeline_.get(); }

  sim::Gpu& gpu() { return *gpu_; }
  const index::Index& index() const { return *index_; }
  const workload::KeyColumn& r() const { return *r_; }
  const workload::ProbeRelation& s() const { return s_; }
  const ExperimentConfig& config() const { return config_; }

 private:
  explicit Experiment(const ExperimentConfig& config);

  Status Build();

  ExperimentConfig config_;
  mem::AddressSpace space_;
  std::unique_ptr<sim::Gpu> gpu_;
  std::unique_ptr<sim::FaultInjector> fault_injector_;
  std::unique_ptr<sim::TraceRecorder> trace_;
  std::unique_ptr<obs::PhaseTimeline> timeline_;
  std::unique_ptr<workload::KeyColumn> r_;
  std::unique_ptr<index::Index> index_;
  workload::ProbeRelation s_;
};

}  // namespace gpujoin::core

#endif  // GPUJOIN_CORE_EXPERIMENT_H_
