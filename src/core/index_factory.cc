#include "core/index_factory.h"

#include "index/binary_search.h"
#include "util/check.h"

namespace gpujoin::core {

std::unique_ptr<index::Index> IndexFactory::Build(
    mem::AddressSpace* space, const workload::KeyColumn* column,
    index::IndexType type, const Options& options) {
  switch (type) {
    case index::IndexType::kBinarySearch:
      return std::make_unique<index::BinarySearchIndex>(column);
    case index::IndexType::kBTree:
      return std::make_unique<index::BTreeIndex>(space, column,
                                                 options.btree);
    case index::IndexType::kHarmonia:
      return std::make_unique<index::HarmoniaIndex>(space, column,
                                                    options.harmonia);
    case index::IndexType::kRadixSpline:
      return index::RadixSplineIndex::Build(space, column,
                                            options.radix_spline);
  }
  GPUJOIN_CHECK(false) << "unhandled IndexType";
  return nullptr;
}

}  // namespace gpujoin::core
