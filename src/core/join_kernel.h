#ifndef GPUJOIN_CORE_JOIN_KERNEL_H_
#define GPUJOIN_CORE_JOIN_KERNEL_H_

#include <cstdint>

#include "index/index.h"
#include "sim/gpu.h"

namespace gpujoin::core::internal {

// The INLJ probe kernel shared by the partitioning strategies: reads
// `count` probe keys starting at `keys` (simulated location `keys_addr`),
// looks each up in the index, and materializes (row_id, position) pairs
// for matches into `result_addr`. Row ids are explicit for partitioned
// inputs (`row_ids` non-null, 16-byte tuples) and implicit (scan
// position) otherwise.
//
// `filter_selectivity` < 1 masks lanes out by a hash of their row id
// *without* compacting the warp — filter divergence (paper Sec. 3.3.1).
sim::KernelRun RunJoinKernel(sim::Gpu& gpu, const index::Index& index,
                             const workload::Key* keys,
                             const uint64_t* row_ids, uint64_t count,
                             mem::VirtAddr keys_addr,
                             mem::VirtAddr result_addr,
                             double filter_selectivity,
                             uint64_t* matches_out);

}  // namespace gpujoin::core::internal

#endif  // GPUJOIN_CORE_JOIN_KERNEL_H_
