#ifndef GPUJOIN_CORE_JOIN_KERNEL_H_
#define GPUJOIN_CORE_JOIN_KERNEL_H_

#include <cstdint>
#include <vector>

#include "core/match.h"
#include "index/index.h"
#include "sim/gpu.h"

namespace gpujoin::core::internal {

// The INLJ probe kernel shared by the partitioning strategies: reads
// `count` probe keys starting at `keys` (simulated location `keys_addr`),
// looks each up in the index, and materializes (row_id, position) pairs
// for matches into `result_addr`. Row ids are explicit for partitioned
// inputs (`row_ids` non-null, 16-byte tuples) and implicit
// (`row_id_base` + scan position) otherwise — chunked callers pass their
// chunk offset so implicit row ids stay globally consistent with the
// partitioned paths.
//
// `filter_selectivity` < 1 masks lanes out by a hash of their row id
// *without* compacting the warp — filter divergence (paper Sec. 3.3.1).
//
// When `collect` is non-null every match is also appended to it (test /
// serving observability; the hot path is untouched when null).
sim::KernelRun RunJoinKernel(sim::Gpu& gpu, const index::Index& index,
                             const workload::Key* keys,
                             const uint64_t* row_ids, uint64_t count,
                             mem::VirtAddr keys_addr,
                             mem::VirtAddr result_addr,
                             double filter_selectivity,
                             uint64_t* matches_out,
                             uint64_t row_id_base = 0,
                             std::vector<JoinMatch>* collect = nullptr);

}  // namespace gpujoin::core::internal

#endif  // GPUJOIN_CORE_JOIN_KERNEL_H_
