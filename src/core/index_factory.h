#ifndef GPUJOIN_CORE_INDEX_FACTORY_H_
#define GPUJOIN_CORE_INDEX_FACTORY_H_

#include <memory>

#include "index/btree.h"
#include "index/harmonia.h"
#include "index/index.h"
#include "index/radix_spline.h"
#include "mem/address_space.h"
#include "workload/key_column.h"

namespace gpujoin::core {

// The one place that turns an index::IndexType into a built index over a
// key column. core::Experiment, the sharded engine and the planner's
// candidate engines all construct through here, so a new index structure
// plugs into every driver by extending one switch.
class IndexFactory {
 public:
  struct Options {
    index::BTreeIndex::Options btree;
    index::HarmoniaIndex::Options harmonia;
    index::RadixSplineIndex::Options radix_spline;
  };

  // Builds an index of `type` over `column`, reserving its state in
  // `space`. All four structures are implicit/procedural, so
  // construction is cheap even for out-of-core columns.
  static std::unique_ptr<index::Index> Build(mem::AddressSpace* space,
                                             const workload::KeyColumn* column,
                                             index::IndexType type,
                                             const Options& options = {});
};

}  // namespace gpujoin::core

#endif  // GPUJOIN_CORE_INDEX_FACTORY_H_
