#include "core/sweep.h"

#include <exception>
#include <string>
#include <utility>

namespace gpujoin::core {

SweepRunner::SweepRunner(int threads)
    : threads_(threads <= 0 ? util::ThreadPool::HardwareConcurrency()
                            : threads) {
  if (threads_ > 1) {
    pool_ = std::make_unique<util::ThreadPool>(threads_);
  }
}

SweepRunner::~SweepRunner() = default;

void SweepRunner::Submit(std::function<void()> cell) {
  if (pool_ == nullptr) {
    if (!first_error_.ok()) return;  // skip cells after the first failure
    try {
      cell();
    } catch (const std::exception& e) {
      first_error_ = Status::Internal(std::string("cell failed: ") + e.what());
    } catch (...) {
      first_error_ = Status::Internal("cell failed: unknown exception");
    }
    return;
  }
  pool_->Submit(std::move(cell));
}

Status SweepRunner::Finish() {
  if (pool_ != nullptr) return pool_->Wait();
  return first_error_;
}

}  // namespace gpujoin::core
