#include "core/sweep.h"

#include <utility>

namespace gpujoin::core {

SweepRunner::SweepRunner(int threads)
    : threads_(threads <= 0 ? util::ThreadPool::HardwareConcurrency()
                            : threads) {
  if (threads_ > 1) {
    pool_ = std::make_unique<util::ThreadPool>(threads_);
  }
}

SweepRunner::~SweepRunner() = default;

void SweepRunner::Submit(std::function<void()> cell) {
  if (pool_ == nullptr) {
    cell();
    return;
  }
  pool_->Submit(std::move(cell));
}

void SweepRunner::Finish() {
  if (pool_ != nullptr) pool_->Wait();
}

}  // namespace gpujoin::core
