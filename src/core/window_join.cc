#include "core/window_join.h"

#include "core/join_kernel.h"
#include "sim/phase.h"

namespace gpujoin::core {
namespace internal {

Result<ResultBuffer> ReserveResultBuffer(sim::Gpu& gpu, uint64_t tuples,
                                         const InljConfig& config) {
  ResultBuffer out;
  Result<mem::Region> r = gpu.memory().TryReserve(
      tuples * 16,
      config.spill_results_to_host ? mem::MemKind::kHost
                                   : mem::MemKind::kDevice,
      "inlj.result");
  if (r.ok()) {
    out.region = *r;
  } else if (config.recovery.spill_results_on_alloc_failure) {
    out.region = gpu.memory().space().Reserve(tuples * 16,
                                              mem::MemKind::kHost,
                                              "inlj.result");
    out.on_host = true;
  } else {
    return r.status();
  }
  return out;
}

Status RunChunk(sim::Gpu& gpu, const index::Index& index,
                const workload::ProbeRelation& s,
                const partition::RadixPartitioner& partitioner,
                const InljConfig& config, uint64_t begin, uint64_t count,
                mem::VirtAddr result_base, sim::KernelRun* part,
                sim::KernelRun* join, uint64_t* matches, WindowStats* stats,
                bool top_level, std::vector<JoinMatch>* collect) {
  partition::PartitionOptions popts;
  popts.bucket_slack = config.bucket_slack;
  popts.spill_on_overflow = config.recovery.spill_on_overflow;

  Result<partition::PartitionedKeys> parts = partitioner.Partition(
      gpu, s.keys.data().data() + begin, count, s.keys.addr_of(begin),
      begin, part, popts);
  if (parts.ok()) {
    stats->spilled_tuples += parts->spilled_tuples;
    stats->spill_buckets += parts->spill_buckets;
    join->Merge(internal::RunJoinKernel(
        gpu, index, parts->keys.data(), parts->row_ids.data(), count,
        parts->tuple_addr(0), result_base, config.probe_filter_selectivity,
        matches, /*row_id_base=*/0, collect));
    return gpu.memory().fault_status();
  }

  // An unrecoverable injected fault (retry budget exhausted) ends the
  // run regardless of policy.
  Status fatal = gpu.memory().fault_status();
  if (!fatal.ok()) return fatal;
  if (parts.status().code() != StatusCode::kResourceExhausted) {
    return parts.status();
  }

  if (config.recovery.shrink_window_on_alloc_failure && count >= 64) {
    if (top_level) ++stats->degraded_windows;
    const uint64_t half = count / 2;
    Status st = RunChunk(gpu, index, s, partitioner, config, begin, half,
                         result_base, part, join, matches, stats,
                         /*top_level=*/false, collect);
    if (!st.ok()) return st;
    return RunChunk(gpu, index, s, partitioner, config, begin + half,
                    count - half, result_base, part, join, matches, stats,
                    /*top_level=*/false, collect);
  }

  if (config.recovery.fallback_to_unpartitioned) {
    ++stats->fallback_windows;
    join->Merge(internal::RunJoinKernel(
        gpu, index, s.keys.data().data() + begin, nullptr, count,
        s.keys.addr_of(begin), result_base, config.probe_filter_selectivity,
        matches, /*row_id_base=*/begin, collect));
    return gpu.memory().fault_status();
  }

  return parts.status();
}

}  // namespace internal

Result<WindowJoiner> WindowJoiner::Create(sim::Gpu& gpu,
                                          const index::Index& index,
                                          const workload::ProbeRelation& s,
                                          const InljConfig& config,
                                          uint64_t result_tuples) {
  Result<internal::ResultBuffer> result =
      internal::ReserveResultBuffer(gpu, result_tuples, config);
  if (!result.ok()) return result.status();
  Result<partition::RadixPartitionSpec> spec = partition::PlanPartitionBits(
      index.column(), config.max_partition_bits, config.ignore_lsb);
  if (!spec.ok()) return spec.status();
  return WindowJoiner(gpu, index, s, config, *spec, *result);
}

Result<WindowRun> WindowJoiner::RunWindow(uint64_t begin, uint64_t count,
                                          uint64_t ordinal,
                                          std::vector<JoinMatch>* collect) {
  if (count == 0) {
    return Status::InvalidArgument("cannot run an empty window");
  }
  if (begin + count > s_->sample_size()) {
    return Status::InvalidArgument(
        "window [" + std::to_string(begin) + ", " +
        std::to_string(begin + count) + ") exceeds the probe sample (" +
        std::to_string(s_->sample_size()) + " tuples)");
  }
  // A real window's churn evicts the previous window's cache lines; the
  // serviced windows must not inherit each other's state.
  if (!first_window_) gpu_->memory().FlushCaches();
  first_window_ = false;

  WindowRun run;
  sim::WindowScope window(gpu_->memory().phase_sink(), ordinal);
  Status st = internal::RunChunk(*gpu_, *index_, *s_, partitioner_, config_,
                                 begin, count, result_.region.base,
                                 &run.partition, &run.join, &run.matches,
                                 &run.stats, /*top_level=*/true, collect);
  if (!st.ok()) return st;
  run.partition_seconds = gpu_->cost_model().Seconds(run.partition.counters) +
                          gpu_->platform().gpu.stream_sync_overhead;
  run.join_seconds = gpu_->cost_model().Seconds(run.join.counters);
  return run;
}

}  // namespace gpujoin::core
