#ifndef GPUJOIN_CORE_MATCH_H_
#define GPUJOIN_CORE_MATCH_H_

#include <cstdint>

namespace gpujoin::core {

// One materialized join match: the probe-side row and the matched
// position in R. Collected optionally by the join kernel so differential
// tests can compare the *match sets* of the partitioning strategies, not
// just their cardinalities.
struct JoinMatch {
  uint64_t probe_row = 0;
  uint64_t position = 0;

  friend bool operator==(const JoinMatch&, const JoinMatch&) = default;
  friend bool operator<(const JoinMatch& a, const JoinMatch& b) {
    return a.probe_row != b.probe_row ? a.probe_row < b.probe_row
                                      : a.position < b.position;
  }
};

}  // namespace gpujoin::core

#endif  // GPUJOIN_CORE_MATCH_H_
