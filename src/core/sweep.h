#ifndef GPUJOIN_CORE_SWEEP_H_
#define GPUJOIN_CORE_SWEEP_H_

#include <functional>
#include <memory>
#include <vector>

#include "util/thread_pool.h"

namespace gpujoin::core {

// Runs the independent cells of an experiment sweep (one cell per grid
// point — typically one row of a figure: a fixed R size across index
// types) on a thread pool, collecting results in submission order.
//
// Determinism contract: every cell builds its own Experiment (own
// AddressSpace, Gpu, workload RNG) and shares no mutable state, so a
// sweep produces bit-identical results for any thread count — including
// the OOM cells, whose failure is a deterministic memory-budget check.
// `threads == 1` runs each cell inline on the calling thread at Submit
// time, exactly reproducing the original serial loop.
class SweepRunner {
 public:
  // `threads <= 0` resolves to the hardware concurrency.
  explicit SweepRunner(int threads);

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  ~SweepRunner();

  // Enqueues one cell. The callable must write its result to
  // caller-owned storage that outlives Finish() (e.g. its slot in a
  // pre-sized result vector); cells for distinct slots may run
  // concurrently.
  void Submit(std::function<void()> cell);

  // Blocks until every submitted cell has finished.
  void Finish();

  int threads() const { return threads_; }

 private:
  int threads_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when threads_ == 1
};

// Convenience wrapper: runs `cells` and returns their results in cell
// order. T must be default-constructible.
template <typename T>
std::vector<T> RunSweep(int threads,
                        const std::vector<std::function<T()>>& cells) {
  std::vector<T> results(cells.size());
  SweepRunner runner(threads);
  for (size_t i = 0; i < cells.size(); ++i) {
    runner.Submit([&results, &cells, i] { results[i] = cells[i](); });
  }
  runner.Finish();
  return results;
}

}  // namespace gpujoin::core

#endif  // GPUJOIN_CORE_SWEEP_H_
