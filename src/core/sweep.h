#ifndef GPUJOIN_CORE_SWEEP_H_
#define GPUJOIN_CORE_SWEEP_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/thread_pool.h"

namespace gpujoin::core {

// Runs the independent cells of an experiment sweep (one cell per grid
// point — typically one row of a figure: a fixed R size across index
// types) on a thread pool, collecting results in submission order.
//
// Determinism contract: every cell builds its own Experiment (own
// AddressSpace, Gpu, workload RNG) and shares no mutable state, so a
// sweep produces bit-identical results for any thread count — including
// the OOM cells, whose failure is a deterministic memory-budget check.
// `threads == 1` runs each cell inline on the calling thread at Submit
// time, exactly reproducing the original serial loop.
//
// Failure model: a cell that throws does not terminate the process. The
// first failure is captured as a Status, cells submitted after it are
// skipped, and Finish() surfaces the error.
class SweepRunner {
 public:
  // `threads <= 0` resolves to the hardware concurrency.
  explicit SweepRunner(int threads);

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  ~SweepRunner();

  // Enqueues one cell. The callable must write its result to
  // caller-owned storage that outlives Finish() (e.g. its slot in a
  // pre-sized result vector); cells for distinct slots may run
  // concurrently. Cells submitted after a failure are skipped.
  void Submit(std::function<void()> cell);

  // Blocks until every submitted cell has finished (or was skipped),
  // then returns OK or the first cell failure.
  Status Finish();

  int threads() const { return threads_; }

 private:
  int threads_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when threads_ == 1
  Status first_error_;  // inline (threads_ == 1) failures only
};

// Failure-aware sweep: runs `cells` and returns their results in cell
// order, or the first cell failure. T must be default-constructible.
template <typename T>
Result<std::vector<T>> TryRunSweep(
    int threads, const std::vector<std::function<T()>>& cells) {
  std::vector<T> results(cells.size());
  SweepRunner runner(threads);
  for (size_t i = 0; i < cells.size(); ++i) {
    runner.Submit([&results, &cells, i] { results[i] = cells[i](); });
  }
  Status s = runner.Finish();
  if (!s.ok()) return s;
  return results;
}

// Convenience wrapper for sweeps that are expected to succeed: any cell
// failure is fatal (Result::value() checks).
template <typename T>
std::vector<T> RunSweep(int threads,
                        const std::vector<std::function<T()>>& cells) {
  return TryRunSweep(threads, cells).value();
}

}  // namespace gpujoin::core

#endif  // GPUJOIN_CORE_SWEEP_H_
