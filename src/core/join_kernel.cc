#include "core/join_kernel.h"

#include <algorithm>
#include <array>
#include <bit>

#include "sim/phase.h"
#include "util/rng.h"

namespace gpujoin::core::internal {

using workload::Key;

sim::KernelRun RunJoinKernel(sim::Gpu& gpu, const index::Index& index,
                             const Key* keys, const uint64_t* row_ids,
                             uint64_t count, mem::VirtAddr keys_addr,
                             mem::VirtAddr result_addr,
                             double filter_selectivity,
                             uint64_t* matches_out, uint64_t row_id_base,
                             std::vector<JoinMatch>* collect) {
  const uint64_t tuple_bytes =
      row_ids != nullptr ? sizeof(Key) + 8 : sizeof(Key);
  const bool no_filter = filter_selectivity >= 1.0;
  const uint64_t filter_threshold =
      no_filter ? ~uint64_t{0}
                : static_cast<uint64_t>(filter_selectivity * 0x1p64);
  uint64_t matches = 0;
  sim::KernelRun run = gpu.RunKernel("inlj", count, [&](sim::Warp& warp) {
    sim::PhaseSink* const sink = warp.memory().phase_sink();
    const uint64_t base = warp.base_item();
    const int lanes = warp.lane_count();
    {
      // Probe tuples arrive as a coalesced stream from wherever they live
      // (CPU memory for the raw stream, GPU memory for partitioned
      // windows).
      sim::PhaseScope phase(sink, "probe.stage_in");
      warp.memory().Stream(keys_addr + base * tuple_bytes,
                           lanes * tuple_bytes, sim::AccessType::kRead);
    }

    std::array<Key, sim::Warp::kWidth> probe{};
    std::array<uint64_t, sim::Warp::kWidth> pos{};
    std::array<uint64_t, sim::Warp::kWidth> rows{};
    uint32_t found = 0;
    {
      sim::PhaseScope phase(sink, "probe.lookup");
      // Apply the upstream filter: surviving lanes look up, the others
      // idle alongside them (filter divergence — the warp is not
      // compacted).
      uint32_t lookup_mask = 0;
      for (int lane = 0; lane < lanes; ++lane) {
        probe[lane] = keys[base + lane];
        rows[lane] = row_ids != nullptr ? row_ids[base + lane]
                                        : row_id_base + base + lane;
        if (no_filter ||
            SplitMix64(rows[lane] * 0xc2b2ae3d27d4eb4fULL) <=
                filter_threshold) {
          lookup_mask |= 1u << lane;
        }
      }
      warp.AddSteps(1);  // predicate evaluation

      found = index.LookupWarp(warp, probe.data(), lookup_mask, pos.data());
    }

    const uint64_t n_found =
        static_cast<uint64_t>(std::popcount(found));
    if (n_found > 0) {
      sim::PhaseScope phase(sink, "probe.materialize");
      warp.memory().Stream(result_addr + matches * 16, n_found * 16,
                           sim::AccessType::kWrite);
      matches += n_found;
      if (collect != nullptr) {
        for (int lane = 0; lane < lanes; ++lane) {
          if (found & (1u << lane)) {
            collect->push_back({rows[lane], pos[lane]});
          }
        }
      }
    }
  });
  *matches_out += matches;
  return run;
}


}  // namespace gpujoin::core::internal
