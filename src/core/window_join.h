#ifndef GPUJOIN_CORE_WINDOW_JOIN_H_
#define GPUJOIN_CORE_WINDOW_JOIN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/inlj.h"
#include "core/match.h"
#include "index/index.h"
#include "partition/radix_partitioner.h"
#include "sim/gpu.h"
#include "util/status.h"
#include "workload/relation.h"

namespace gpujoin::core {

// Degradation events observed while partitioning and joining a window
// (simulated-sample scale; see core::RecoveryPolicy for the ladder that
// produces them).
struct WindowStats {
  uint64_t spilled_tuples = 0;
  uint64_t spill_buckets = 0;
  uint64_t degraded_windows = 0;
  uint64_t fallback_windows = 0;

  WindowStats& operator+=(const WindowStats& o) {
    spilled_tuples += o.spilled_tuples;
    spill_buckets += o.spill_buckets;
    degraded_windows += o.degraded_windows;
    fallback_windows += o.fallback_windows;
    return *this;
  }
};

// The outcome of servicing one window through the partition+join
// pipeline: the two kernels' counters (for extrapolating callers), their
// cost-model time, and what degraded along the way.
struct WindowRun {
  sim::KernelRun partition{"partition", {}};
  sim::KernelRun join{"join", {}};
  // Cost-model time of the two kernels; partition_seconds includes the
  // per-window stream synchronization overhead, as in the batch pipeline.
  double partition_seconds = 0;
  double join_seconds = 0;
  uint64_t matches = 0;
  WindowStats stats;

  double seconds() const { return partition_seconds + join_seconds; }
};

namespace internal {

// The result buffer shared by a run's windows: GPU memory by default
// (paper Sec. 3.2), CPU memory when spilling (footnote 1) or when a
// fault-injected device allocation failure degrades placement under
// RecoveryPolicy::spill_results_on_alloc_failure.
struct ResultBuffer {
  mem::Region region;
  bool on_host = false;
};

Result<ResultBuffer> ReserveResultBuffer(sim::Gpu& gpu, uint64_t tuples,
                                         const InljConfig& config);

// Partitions and joins s[begin, begin+count) as one unit of work,
// applying the recovery ladder on failure:
//   partition-bucket overflow  -> spill chains (inside the partitioner)
//   allocation failure         -> halve the chunk and retry each half
//   still unpartitionable      -> join this chunk unpartitioned
//   anything else / fail-stop  -> propagate the error Status
// `top_level` marks the original window so a window halved more than once
// counts as one degraded window.
Status RunChunk(sim::Gpu& gpu, const index::Index& index,
                const workload::ProbeRelation& s,
                const partition::RadixPartitioner& partitioner,
                const InljConfig& config, uint64_t begin, uint64_t count,
                mem::VirtAddr result_base, sim::KernelRun* part,
                sim::KernelRun* join, uint64_t* matches, WindowStats* stats,
                bool top_level, std::vector<JoinMatch>* collect = nullptr);

}  // namespace internal

// Window-granular front door into the windowed INLJ (paper Sec. 5): one
// WindowJoiner owns the partition plan and the result buffer, and
// services arbitrary [begin, begin+count) slices of the probe sample
// through the same partition+join+recovery machinery as the batch
// pipeline. The batch pipeline's tumbling-window loop runs on it, and the
// serving layer (src/serve) feeds it micro-batches straight from a
// request queue — the pipelineability the paper claims for windowed
// partitioning.
//
// Hardware-state policy matches the batch loop: caches are flushed before
// every window except the first (a real window's churn evicts its
// predecessor's lines), and each window is bracketed in a WindowScope for
// the phase timeline.
class WindowJoiner {
 public:
  // Plans the partition bits for `index` and reserves the result buffer
  // (capacity `result_tuples` matches; the probe sample size in the batch
  // pipeline). Fails like the batch pipeline: InvalidArgument for a
  // malformed config, ResourceExhausted for an unrecoverable allocation.
  static Result<WindowJoiner> Create(sim::Gpu& gpu,
                                     const index::Index& index,
                                     const workload::ProbeRelation& s,
                                     const InljConfig& config,
                                     uint64_t result_tuples);

  // Services one window over s[begin, begin+count). `ordinal` labels the
  // window for the phase timeline. Fails only when the recovery ladder is
  // exhausted (or disabled) — see core::RecoveryPolicy.
  Result<WindowRun> RunWindow(uint64_t begin, uint64_t count,
                              uint64_t ordinal,
                              std::vector<JoinMatch>* collect = nullptr);

  bool result_on_host() const { return result_.on_host; }
  mem::VirtAddr result_base() const { return result_.region.base; }
  const partition::RadixPartitioner& partitioner() const {
    return partitioner_;
  }

 private:
  WindowJoiner(sim::Gpu& gpu, const index::Index& index,
               const workload::ProbeRelation& s, const InljConfig& config,
               const partition::RadixPartitionSpec& spec,
               internal::ResultBuffer result)
      : gpu_(&gpu),
        index_(&index),
        s_(&s),
        config_(config),
        partitioner_(spec),
        result_(result) {}

  sim::Gpu* gpu_;
  const index::Index* index_;
  const workload::ProbeRelation* s_;
  InljConfig config_;
  partition::RadixPartitioner partitioner_;
  internal::ResultBuffer result_;
  bool first_window_ = true;
};

}  // namespace gpujoin::core

#endif  // GPUJOIN_CORE_WINDOW_JOIN_H_
