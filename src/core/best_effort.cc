#include "core/best_effort.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <vector>

#include "core/join_kernel.h"
#include "partition/radix_partitioner.h"
#include "util/bit_util.h"
#include "util/check.h"

namespace gpujoin::core {

namespace {
using partition::PlanPartitionBits;
using partition::RadixPartitionSpec;
using workload::Key;
}  // namespace

sim::RunResult BestEffortInlj::Run(sim::Gpu& gpu, const index::Index& index,
                                   const workload::ProbeRelation& s) {
  return Run(gpu, index, s, BestEffortConfig());
}

sim::RunResult BestEffortInlj::Run(sim::Gpu& gpu, const index::Index& index,
                                   const workload::ProbeRelation& s,
                                   const BestEffortConfig& config) {
  GPUJOIN_CHECK(config.bucket_tuples >= 32);
  mem::AddressSpace& space = gpu.memory().space();
  const double scale = s.scale();
  const uint64_t sample = s.sample_size();

  const RadixPartitionSpec spec = PlanPartitionBits(
      index.column(), config.max_partition_bits, config.ignore_lsb)
                                      .value();
  const uint32_t num_partitions = spec.num_partitions();

  // Bucket storage: one fixed-capacity buffer of 16-byte (key, row_id)
  // tuples per partition, resident in GPU memory for the whole run.
  const uint64_t total_slots =
      uint64_t{num_partitions} * config.bucket_tuples;
  const mem::Region bucket_region = space.Reserve(
      total_slots * 16, mem::MemKind::kDevice, "bep.buckets");
  std::vector<Key> bucket_keys(total_slots);
  std::vector<uint64_t> bucket_rows(total_slots);
  auto slot_addr = [&](uint64_t slot) {
    return bucket_region.base + slot * 16;
  };
  const mem::Region result_region =
      space.Reserve(sample * 16, mem::MemKind::kDevice, "bep.result");

  std::vector<uint32_t> fill(num_partitions, 0);

  // A filled bucket's contents are snapshotted and joined after the
  // scatter kernel (the real operator hands it to the join stream while
  // the scatter keeps running; the simulator must not nest kernels).
  struct FlushJob {
    uint32_t partition;
    uint32_t count;
    std::vector<Key> keys;
    std::vector<uint64_t> rows;
  };
  std::deque<FlushJob> pending;

  auto enqueue_flush = [&](uint32_t p) {
    const uint32_t count = fill[p];
    if (count == 0) return;
    const uint64_t base = uint64_t{p} * config.bucket_tuples;
    FlushJob job;
    job.partition = p;
    job.count = count;
    job.keys.assign(bucket_keys.begin() + base,
                    bucket_keys.begin() + base + count);
    job.rows.assign(bucket_rows.begin() + base,
                    bucket_rows.begin() + base + count);
    pending.push_back(std::move(job));
    fill[p] = 0;
  };

  uint64_t matches = 0;
  sim::KernelRun joins{"bep_join", {}};
  uint64_t flushes = 0;

  // Scatter pass: stream S in, append each tuple to its bucket, handing
  // filled buckets to the join stream. The scatter writes are
  // data-dependent (no SWWC staging — best-effort partitioning works
  // tuple-at-a-time).
  sim::KernelRun scatter =
      gpu.RunKernel("bep_scatter", sample, [&](sim::Warp& warp) {
        const uint64_t base_item = warp.base_item();
        const int lanes = warp.lane_count();
        warp.memory().Stream(s.keys.addr_of(base_item),
                             lanes * sizeof(Key), sim::AccessType::kRead);
        std::array<mem::VirtAddr, sim::Warp::kWidth> addrs{};
        uint32_t mask = 0;
        for (int lane = 0; lane < lanes; ++lane) {
          const Key key = s.keys[base_item + lane];
          const uint32_t p = spec.PartitionOf(key);
          const uint64_t slot =
              uint64_t{p} * config.bucket_tuples + fill[p];
          bucket_keys[slot] = key;
          bucket_rows[slot] = base_item + lane;
          addrs[lane] = slot_addr(slot);
          mask |= 1u << lane;
          ++fill[p];
          if (fill[p] == config.bucket_tuples) enqueue_flush(p);
        }
        warp.Gather(addrs.data(), mask, sizeof(Key) + 8,
                    sim::AccessType::kWrite);
      });

  // Drain the partially-filled buckets too.
  for (uint32_t p = 0; p < num_partitions; ++p) enqueue_flush(p);

  for (const FlushJob& job : pending) {
    const uint64_t base = uint64_t{job.partition} * config.bucket_tuples;
    joins.Merge(internal::RunJoinKernel(
        gpu, index, job.keys.data(), job.rows.data(), job.count,
        slot_addr(base), result_region.base,
        config.probe_filter_selectivity, &matches));
    ++flushes;
  }

  scatter.counters = scatter.counters.Scaled(scale);
  joins.counters = joins.counters.Scaled(scale);
  // Launch counts scale with the flush count, which is per-tuple work.
  joins.counters.kernel_launches = static_cast<uint64_t>(
      std::llround(static_cast<double>(flushes) * scale));

  sim::RunResult result;
  result.label = std::string("bep_inlj_") + index.name();
  result.probe_tuples = s.full_size;
  result.result_tuples = static_cast<uint64_t>(
      std::llround(static_cast<double>(matches) * scale));
  const double t_scatter = gpu.TimeOf(scatter);
  const double t_join = gpu.TimeOf(joins);
  // Scatter and bucket joins interleave on the device; the joins dominate
  // and the scatter overlaps them (same max() treatment as one kernel).
  result.seconds = std::max(t_scatter, t_join);
  result.counters = scatter.counters;
  result.counters += joins.counters;
  result.AddStage("scatter", t_scatter);
  result.AddStage("bucket_joins", t_join);
  return result;
}

}  // namespace gpujoin::core
