#ifndef GPUJOIN_CORE_INLJ_H_
#define GPUJOIN_CORE_INLJ_H_

#include <cstdint>

#include "index/index.h"
#include "sim/gpu.h"
#include "sim/run_result.h"
#include "workload/relation.h"

namespace gpujoin::core {

// Configuration of the index-nested-loop join over a fast interconnect.
//
// The three partition modes correspond to the paper's progression:
//  * kNone     — the textbook INLJ of Sec. 3: probe keys in stream order.
//    Collapses beyond the GPU TLB range (Fig. 3/4).
//  * kFull     — Sec. 4: radix-partition *all* lookup keys up front
//    (materializing them), then join (Fig. 5/6).
//  * kWindowed — Sec. 5, the paper's contribution: partition the probe
//    stream inside tumbling windows, keeping the join pipelineable while
//    retaining TLB locality (Figs. 7–9).
struct InljConfig {
  enum class PartitionMode { kNone, kFull, kWindowed };

  PartitionMode mode = PartitionMode::kWindowed;

  // Tumbling window capacity in tuples. The paper's default working point
  // is 32 MiB = 2^22 8-byte keys (Sec. 5.2.2).
  uint64_t window_tuples = uint64_t{1} << 22;

  // Radix partitioning of the lookup keys: 2^max_partition_bits
  // partitions (2048 in Sec. 4.3.1), skipping the least significant key
  // bits.
  int max_partition_bits = 11;
  int ignore_lsb = 4;

  // Concurrent kernel execution: overlap window t's partitioning with
  // window t-1's join on a second CUDA stream (Sec. 5.1).
  bool overlap = true;

  // Where join results materialize. The paper's queries materialize into
  // GPU memory (Sec. 3.2); its footnote 1 notes that "large results could
  // be spilled to CPU memory" — enabling this sends result writes back
  // across the interconnect instead.
  bool spill_results_to_host = false;

  // Fraction of probe tuples that survive an upstream filter predicate.
  // The paper's main workload uses 1.0 ("our probe side relation does not
  // include any filter predicates to avoid warp divergence effects",
  // Sec. 3.3.1); lower values introduce exactly that *filter divergence*:
  // warps stay fully occupied but only a fraction of lanes do useful
  // lookups.
  double probe_filter_selectivity = 1.0;
};

const char* PartitionModeName(InljConfig::PartitionMode mode);

// Runs the INLJ end to end (probe-stream transfer, optional partitioning,
// index lookups, result materialization into GPU memory) and extrapolates
// the sampled probe set to |S|.
class IndexNestedLoopJoin {
 public:
  static sim::RunResult Run(sim::Gpu& gpu, const index::Index& index,
                            const workload::ProbeRelation& s,
                            const InljConfig& config = InljConfig());
};

}  // namespace gpujoin::core

#endif  // GPUJOIN_CORE_INLJ_H_
