#ifndef GPUJOIN_CORE_INLJ_H_
#define GPUJOIN_CORE_INLJ_H_

#include <cstdint>
#include <vector>

#include "core/match.h"
#include "index/index.h"
#include "sim/gpu.h"
#include "sim/run_result.h"
#include "util/status.h"
#include "workload/relation.h"

namespace gpujoin::core {

// What the join does when something goes wrong mid-pipeline (bucket
// overflow under skew, simulated allocation failure). The default is
// fully graceful: degrade the affected window and keep going. FailStop()
// turns every recovery path off, so the first anomaly surfaces as an
// error Status — the pre-fault-model behaviour, for ablations.
struct RecoveryPolicy {
  // Chain overflowing partition buckets into spill buckets instead of
  // failing the window (see partition::PartitionOptions).
  bool spill_on_overflow = true;
  // On a failed window-buffer allocation, halve the window and retry
  // (down to one warp of 32 tuples) instead of failing the run.
  bool shrink_window_on_alloc_failure = true;
  // If a window still cannot be partitioned, join it unpartitioned
  // (PartitionMode::kNone semantics for that window only).
  bool fallback_to_unpartitioned = true;
  // On a failed result-buffer allocation, materialize into CPU memory
  // across the interconnect (paper footnote 1) instead of failing.
  bool spill_results_on_alloc_failure = true;

  static RecoveryPolicy FailStop() {
    RecoveryPolicy p;
    p.spill_on_overflow = false;
    p.shrink_window_on_alloc_failure = false;
    p.fallback_to_unpartitioned = false;
    p.spill_results_on_alloc_failure = false;
    return p;
  }
};

// Configuration of the index-nested-loop join over a fast interconnect.
//
// The three partition modes correspond to the paper's progression:
//  * kNone     — the textbook INLJ of Sec. 3: probe keys in stream order.
//    Collapses beyond the GPU TLB range (Fig. 3/4).
//  * kFull     — Sec. 4: radix-partition *all* lookup keys up front
//    (materializing them), then join (Fig. 5/6).
//  * kWindowed — Sec. 5, the paper's contribution: partition the probe
//    stream inside tumbling windows, keeping the join pipelineable while
//    retaining TLB locality (Figs. 7–9).
struct InljConfig {
  enum class PartitionMode { kNone, kFull, kWindowed };

  PartitionMode mode = PartitionMode::kWindowed;

  // Tumbling window capacity in tuples. The paper's default working point
  // is 32 MiB = 2^22 8-byte keys (Sec. 5.2.2).
  uint64_t window_tuples = uint64_t{1} << 22;

  // Radix partitioning of the lookup keys: 2^max_partition_bits
  // partitions (2048 in Sec. 4.3.1), skipping the least significant key
  // bits.
  int max_partition_bits = 11;
  int ignore_lsb = 4;

  // Concurrent kernel execution: overlap window t's partitioning with
  // window t-1's join on a second CUDA stream (Sec. 5.1).
  bool overlap = true;

  // Where join results materialize. The paper's queries materialize into
  // GPU memory (Sec. 3.2); its footnote 1 notes that "large results could
  // be spilled to CPU memory" — enabling this sends result writes back
  // across the interconnect instead.
  bool spill_results_to_host = false;

  // Fraction of probe tuples that survive an upstream filter predicate.
  // The paper's main workload uses 1.0 ("our probe side relation does not
  // include any filter predicates to avoid warp divergence effects",
  // Sec. 3.3.1); lower values introduce exactly that *filter divergence*:
  // warps stay fully occupied but only a fraction of lanes do useful
  // lookups.
  double probe_filter_selectivity = 1.0;

  // Partition bucket sizing headroom (see partition::PartitionOptions).
  // 0 (the default) models exact two-pass sizing: buckets never overflow
  // and skew only degrades locality, as in the paper's experiments.
  double bucket_slack = 0;

  // Recovery behaviour under injected faults and bucket overflow.
  RecoveryPolicy recovery;
};

const char* PartitionModeName(InljConfig::PartitionMode mode);

// Runs the INLJ end to end (probe-stream transfer, optional partitioning,
// index lookups, result materialization into GPU memory) and extrapolates
// the sampled probe set to |S|.
//
// Fails with InvalidArgument for a malformed config and with
// ResourceExhausted when an injected fault is unrecoverable under the
// configured RecoveryPolicy (or exhausts its retry budget). Recoverable
// anomalies degrade the run instead and are reported through the
// RunResult robustness fields.
//
// When `collect` is non-null every sample-scale match is also appended
// to it as a (probe_row, index_position) pair, regardless of partition
// mode — the hook the differential tests use to check that all three
// modes produce the same match set.
class IndexNestedLoopJoin {
 public:
  static Result<sim::RunResult> Run(sim::Gpu& gpu,
                                    const index::Index& index,
                                    const workload::ProbeRelation& s,
                                    const InljConfig& config = InljConfig(),
                                    std::vector<JoinMatch>* collect = nullptr);
};

}  // namespace gpujoin::core

#endif  // GPUJOIN_CORE_INLJ_H_
