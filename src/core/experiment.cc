#include "core/experiment.h"

#include <utility>

#include "core/index_factory.h"
#include "util/units.h"

namespace gpujoin::core {

namespace {
mem::AddressSpace::Options SpaceOptions(const ExperimentConfig& config) {
  mem::AddressSpace::Options options;
  options.host_page_size = config.host_page_size;
  return options;
}
}  // namespace

Experiment::Experiment(const ExperimentConfig& config)
    : config_(config), space_(SpaceOptions(config)) {}

Result<std::unique_ptr<Experiment>> Experiment::Create(
    const ExperimentConfig& config) {
  if (config.r_tuples < 2) {
    return Status::InvalidArgument("r_tuples must be >= 2");
  }
  if (config.s_sample == 0 || config.s_sample > config.s_tuples) {
    return Status::InvalidArgument("invalid s_sample");
  }
  std::unique_ptr<Experiment> exp(new Experiment(config));
  Status s = exp->Build();
  if (!s.ok()) return s;
  return exp;
}

Status Experiment::Build() {
  gpu_ = std::make_unique<sim::Gpu>(&space_, config_.platform);
  if (config_.fault.enabled()) {
    fault_injector_ = std::make_unique<sim::FaultInjector>(config_.fault);
    gpu_->memory().SetFaultInjector(fault_injector_.get());
  }

  if (config_.jittered_keys) {
    r_ = std::make_unique<workload::JitteredKeyColumn>(
        &space_, config_.r_tuples, /*stride=*/16, config_.seed);
  } else {
    r_ = std::make_unique<workload::DenseKeyColumn>(&space_,
                                                    config_.r_tuples);
  }

  index_ = IndexFactory::Build(
      &space_, r_.get(), config_.index_type,
      {config_.btree, config_.harmonia, config_.radix_spline});

  workload::ProbeConfig probe_config;
  probe_config.full_size = config_.s_tuples;
  probe_config.sample_size = config_.s_sample;
  probe_config.zipf_exponent = config_.zipf_exponent;
  probe_config.seed = config_.seed;
  // Partitioned/windowed runs are driven by per-partition key density:
  // sample at full density over a slice of R. Unpartitioned runs are
  // driven by the random working set: thin the full stream instead.
  switch (config_.sample_scheme) {
    case ExperimentConfig::SampleSchemeOverride::kAuto:
      probe_config.scheme =
          config_.inlj.mode == InljConfig::PartitionMode::kNone
              ? workload::SampleScheme::kThinned
              : workload::SampleScheme::kRangeRestricted;
      break;
    case ExperimentConfig::SampleSchemeOverride::kThinned:
      probe_config.scheme = workload::SampleScheme::kThinned;
      break;
    case ExperimentConfig::SampleSchemeOverride::kRangeRestricted:
      probe_config.scheme = workload::SampleScheme::kRangeRestricted;
      break;
  }
  s_ = workload::MakeProbeRelation(&space_, *r_, probe_config);

  const uint64_t host_bytes =
      space_.reserved_bytes(mem::MemKind::kHost) +
      // The sampled S stands for the full probe relation.
      (config_.s_tuples - config_.s_sample) * sizeof(workload::Key);
  if (host_bytes > config_.host_capacity) {
    return Status::ResourceExhausted(
        "relations + index (" + FormatBytes(host_bytes) +
        ") exceed CPU memory (" + FormatBytes(config_.host_capacity) + ")");
  }
  return Status::Ok();
}

void Experiment::EnableObservability() {
  if (trace_ == nullptr) {
    trace_ = std::make_unique<sim::TraceRecorder>(&space_);
    gpu_->memory().AddObserver(trace_.get());
  }
  if (timeline_ == nullptr) {
    timeline_ = std::make_unique<obs::PhaseTimeline>(&gpu_->memory(),
                                                     &gpu_->cost_model());
    timeline_->AttachTo(&gpu_->memory());
  }
}

void Experiment::DisableObservability() {
  if (trace_ != nullptr) {
    gpu_->memory().RemoveObserver(trace_.get());
    trace_.reset();
  }
  if (timeline_ != nullptr) {
    timeline_->DetachFrom(&gpu_->memory());
    timeline_.reset();
  }
}

void Experiment::ResetForRun() {
  gpu_->memory().ClearHardwareState();
  if (fault_injector_ != nullptr) fault_injector_->Reset();
  if (trace_ != nullptr) trace_->Reset();
  if (timeline_ != nullptr) timeline_->Reset();
}

Result<sim::RunResult> Experiment::RunInlj(std::vector<JoinMatch>* collect) {
  ResetForRun();
  Result<sim::RunResult> result =
      IndexNestedLoopJoin::Run(*gpu_, *index_, s_, config_.inlj, collect);
  if (result.ok() && timeline_ != nullptr) {
    result->phase_spans = timeline_->Spans();
  }
  return result;
}

Result<sim::RunResult> Experiment::RunHashJoin() {
  ResetForRun();
  Result<sim::RunResult> result =
      join::HashJoin::Run(*gpu_, *r_, s_, config_.hash_join);
  if (result.ok() && timeline_ != nullptr) {
    result->phase_spans = timeline_->Spans();
  }
  return result;
}

}  // namespace gpujoin::core
