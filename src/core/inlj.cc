#include "core/inlj.h"

#include "core/join_kernel.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <string>
#include <vector>

#include "partition/radix_partitioner.h"
#include "util/bit_util.h"
#include "util/check.h"
#include "util/rng.h"

namespace gpujoin::core {

namespace {

using partition::PartitionedKeys;
using partition::RadixPartitioner;
using workload::Key;

}  // namespace

const char* PartitionModeName(InljConfig::PartitionMode mode) {
  switch (mode) {
    case InljConfig::PartitionMode::kNone:
      return "none";
    case InljConfig::PartitionMode::kFull:
      return "full";
    case InljConfig::PartitionMode::kWindowed:
      return "windowed";
  }
  return "unknown";
}

sim::RunResult IndexNestedLoopJoin::Run(sim::Gpu& gpu,
                                        const index::Index& index,
                                        const workload::ProbeRelation& s,
                                        const InljConfig& config) {
  mem::AddressSpace& space = gpu.memory().space();
  const double scale = s.scale();
  const uint64_t sample = s.sample_size();

  // Result buffer: GPU memory by default (Sec. 3.2), CPU memory when
  // spilling (footnote 1).
  const mem::Region result_region = space.Reserve(
      sample * 16,
      config.spill_results_to_host ? mem::MemKind::kHost
                                   : mem::MemKind::kDevice,
      "inlj.result");

  sim::RunResult result;
  result.label = std::string("inlj_") + index.name();
  result.probe_tuples = s.full_size;
  uint64_t matches = 0;

  switch (config.mode) {
    case InljConfig::PartitionMode::kNone: {
      sim::KernelRun join = internal::RunJoinKernel(
          gpu, index, s.keys.data().data(), nullptr, sample,
          s.keys.addr_of(0), result_region.base,
          config.probe_filter_selectivity, &matches);
      join.counters = join.counters.Scaled(scale);
      result.seconds = gpu.TimeOf(join);
      result.counters = join.counters;
      result.AddStage("join", result.seconds);
      break;
    }

    case InljConfig::PartitionMode::kFull: {
      const RadixPartitioner partitioner(partition::PlanPartitionBits(
          index.column(), config.max_partition_bits, config.ignore_lsb));
      sim::KernelRun part{"partition", {}};
      PartitionedKeys parts = partitioner.Partition(
          gpu, s.keys.data().data(), sample, s.keys.addr_of(0),
          /*first_row_id=*/0, &part);
      sim::KernelRun join = internal::RunJoinKernel(
          gpu, index, parts.keys.data(), parts.row_ids.data(), sample,
          parts.tuple_addr(0), result_region.base,
          config.probe_filter_selectivity, &matches);
      part.counters = part.counters.Scaled(scale);
      join.counters = join.counters.Scaled(scale);
      const double t_part = gpu.TimeOf(part);
      const double t_join = gpu.TimeOf(join);
      result.seconds = t_part + t_join;
      result.counters = part.counters;
      result.counters += join.counters;
      result.AddStage("partition", t_part);
      result.AddStage("join", t_join);
      break;
    }

    case InljConfig::PartitionMode::kWindowed: {
      GPUJOIN_CHECK(config.window_tuples > 0);
      const RadixPartitioner partitioner(partition::PlanPartitionBits(
          index.column(), config.max_partition_bits, config.ignore_lsb));

      // Simulate windows over the sample. For range-restricted samples
      // (full density over a 1/scale slice of R), a simulated window of
      // W/scale tuples has exactly a real window's per-partition density;
      // thinned samples fall back to sample-sized windows.
      // A window never holds more than the whole probe relation.
      const uint64_t w_full = std::min(config.window_tuples, s.full_size);
      uint64_t w_sim = std::min(w_full, sample);
      if (s.scheme == workload::SampleScheme::kRangeRestricted) {
        w_sim = std::clamp<uint64_t>(
            static_cast<uint64_t>(std::llround(
                static_cast<double>(w_full) / scale)),
            32, sample);
      }
      const double window_scale =
          static_cast<double>(w_full) / static_cast<double>(w_sim);
      const uint64_t n_sim = bits::CeilDiv(sample, w_sim);
      const uint64_t n_full = bits::CeilDiv(s.full_size, w_full);

      sim::CounterSet part_avg;
      sim::CounterSet join_avg;
      uint64_t simulated_tuples = 0;
      for (uint64_t w = 0; w < n_sim; ++w) {
        const uint64_t begin = w * w_sim;
        const uint64_t count = std::min(w_sim, sample - begin);
        simulated_tuples += count;
        // A real window's churn evicts the previous window's cache lines;
        // the sampled windows must not inherit each other's state.
        if (w > 0) gpu.memory().FlushCaches();

        sim::KernelRun part{"partition", {}};
        PartitionedKeys parts = partitioner.Partition(
            gpu, s.keys.data().data() + begin, count,
            s.keys.addr_of(begin), begin, &part);
        sim::KernelRun join = internal::RunJoinKernel(
            gpu, index, parts.keys.data(), parts.row_ids.data(), count,
            parts.tuple_addr(0), result_region.base,
            config.probe_filter_selectivity, &matches);
        part_avg += part.counters;
        join_avg += join.counters;
      }

      // Average per-window counters, normalized to one full-size window.
      const double to_one_window =
          window_scale / static_cast<double>(n_sim);
      part_avg = part_avg.Scaled(to_one_window);
      join_avg = join_avg.Scaled(to_one_window);
      // Keep per-window launch costs: each window launches one partition
      // and one join kernel.
      part_avg.kernel_launches = 1;
      join_avg.kernel_launches = 1;

      const double t_part = gpu.cost_model().Seconds(part_avg) +
                            gpu.platform().gpu.stream_sync_overhead;
      const double t_join = gpu.cost_model().Seconds(join_avg);
      if (config.overlap && n_full > 1) {
        // Two CUDA streams: window t's partition overlaps window t-1's
        // join (Sec. 5.1).
        result.seconds = t_part +
                         static_cast<double>(n_full - 1) *
                             std::max(t_part, t_join) +
                         t_join;
      } else {
        result.seconds = static_cast<double>(n_full) * (t_part + t_join);
      }
      result.counters = part_avg.Scaled(static_cast<double>(n_full));
      result.counters += join_avg.Scaled(static_cast<double>(n_full));
      // Each window launches one partition and one join kernel.
      result.counters.kernel_launches = 2 * n_full;
      result.AddStage("partition/window", t_part);
      result.AddStage("join/window", t_join);
      break;
    }
  }

  result.result_tuples = static_cast<uint64_t>(
      std::llround(static_cast<double>(matches) * scale));
  return result;
}

}  // namespace gpujoin::core
