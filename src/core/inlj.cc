#include "core/inlj.h"

#include "core/join_kernel.h"
#include "core/window_join.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "sim/phase.h"
#include "util/bit_util.h"
#include "util/check.h"

namespace gpujoin::core {

namespace {

uint64_t ScaleStat(uint64_t v, double f) {
  return static_cast<uint64_t>(std::llround(static_cast<double>(v) * f));
}

}  // namespace

const char* PartitionModeName(InljConfig::PartitionMode mode) {
  switch (mode) {
    case InljConfig::PartitionMode::kNone:
      return "none";
    case InljConfig::PartitionMode::kFull:
      return "full";
    case InljConfig::PartitionMode::kWindowed:
      return "windowed";
  }
  return "unknown";
}

Result<sim::RunResult> IndexNestedLoopJoin::Run(
    sim::Gpu& gpu, const index::Index& index,
    const workload::ProbeRelation& s, const InljConfig& config,
    std::vector<JoinMatch>* collect) {
  if (config.mode == InljConfig::PartitionMode::kWindowed) {
    if (config.window_tuples < sim::Warp::kWidth) {
      return Status::InvalidArgument(
          "window_tuples = " + std::to_string(config.window_tuples) +
          " is below one warp (" + std::to_string(sim::Warp::kWidth) +
          " tuples)");
    }
  }

  const double scale = s.scale();
  const uint64_t sample = s.sample_size();

  sim::RunResult result;
  result.label = std::string("inlj_") + index.name();
  result.probe_tuples = s.full_size;
  uint64_t matches = 0;
  WindowStats stats;

  switch (config.mode) {
    case InljConfig::PartitionMode::kNone: {
      Result<internal::ResultBuffer> buffer =
          internal::ReserveResultBuffer(gpu, sample, config);
      if (!buffer.ok()) return buffer.status();
      result.result_buffer_on_host = buffer->on_host;
      sim::KernelRun join = internal::RunJoinKernel(
          gpu, index, s.keys.data().data(), nullptr, sample,
          s.keys.addr_of(0), buffer->region.base,
          config.probe_filter_selectivity, &matches, /*row_id_base=*/0,
          collect);
      Status st = gpu.memory().fault_status();
      if (!st.ok()) return st;
      join.counters = join.counters.Scaled(scale);
      result.seconds = gpu.TimeOf(join);
      result.counters = join.counters;
      result.AddStage("join", result.seconds);
      break;
    }

    case InljConfig::PartitionMode::kFull: {
      Result<internal::ResultBuffer> buffer =
          internal::ReserveResultBuffer(gpu, sample, config);
      if (!buffer.ok()) return buffer.status();
      result.result_buffer_on_host = buffer->on_host;
      Result<partition::RadixPartitionSpec> spec = partition::PlanPartitionBits(
          index.column(), config.max_partition_bits, config.ignore_lsb);
      if (!spec.ok()) return spec.status();
      const partition::RadixPartitioner partitioner(*spec);
      sim::KernelRun part{"partition", {}};
      sim::KernelRun join{"join", {}};
      Status st = internal::RunChunk(gpu, index, s, partitioner, config, 0,
                                     sample, buffer->region.base, &part,
                                     &join, &matches, &stats,
                                     /*top_level=*/true, collect);
      if (!st.ok()) return st;
      part.counters = part.counters.Scaled(scale);
      join.counters = join.counters.Scaled(scale);
      const double t_part = gpu.TimeOf(part);
      const double t_join = gpu.TimeOf(join);
      result.seconds = t_part + t_join;
      result.counters = part.counters;
      result.counters += join.counters;
      result.AddStage("partition", t_part);
      result.AddStage("join", t_join);
      result.spilled_tuples = ScaleStat(stats.spilled_tuples, scale);
      result.spill_buckets = ScaleStat(stats.spill_buckets, scale);
      result.degraded_windows = stats.degraded_windows;
      result.fallback_windows = stats.fallback_windows;
      break;
    }

    case InljConfig::PartitionMode::kWindowed: {
      Result<WindowJoiner> joiner =
          WindowJoiner::Create(gpu, index, s, config, sample);
      if (!joiner.ok()) return joiner.status();
      result.result_buffer_on_host = joiner->result_on_host();

      // Simulate windows over the sample. For range-restricted samples
      // (full density over a 1/scale slice of R), a simulated window of
      // W/scale tuples has exactly a real window's per-partition density;
      // thinned samples fall back to sample-sized windows.
      // A window never holds more than the whole probe relation.
      const uint64_t w_full = std::min(config.window_tuples, s.full_size);
      uint64_t w_sim = std::min(w_full, sample);
      if (s.scheme == workload::SampleScheme::kRangeRestricted) {
        w_sim = std::clamp<uint64_t>(
            static_cast<uint64_t>(std::llround(
                static_cast<double>(w_full) / scale)),
            32, sample);
      }
      const double window_scale =
          static_cast<double>(w_full) / static_cast<double>(w_sim);
      const uint64_t n_sim = bits::CeilDiv(sample, w_sim);
      const uint64_t n_full = bits::CeilDiv(s.full_size, w_full);

      sim::CounterSet part_avg;
      sim::CounterSet join_avg;
      double t_part = 0;
      double t_join = 0;
      for (uint64_t w = 0; w < n_sim; ++w) {
        const uint64_t begin = w * w_sim;
        const uint64_t count = std::min(w_sim, sample - begin);
        Result<WindowRun> run = joiner->RunWindow(begin, count, w, collect);
        if (!run.ok()) return run.status();
        part_avg += run->partition.counters;
        join_avg += run->join.counters;
        matches += run->matches;
        stats += run->stats;
      }

      // Average per-window counters, normalized to one full-size window.
      const double to_one_window =
          window_scale / static_cast<double>(n_sim);
      part_avg = part_avg.Scaled(to_one_window);
      join_avg = join_avg.Scaled(to_one_window);
      // Keep per-window launch costs: each window launches one partition
      // and one join kernel.
      part_avg.kernel_launches = 1;
      join_avg.kernel_launches = 1;

      t_part = gpu.cost_model().Seconds(part_avg) +
               gpu.platform().gpu.stream_sync_overhead;
      t_join = gpu.cost_model().Seconds(join_avg);
      if (config.overlap && n_full > 1) {
        // Two CUDA streams: window t's partition overlaps window t-1's
        // join (Sec. 5.1).
        result.seconds = t_part +
                         static_cast<double>(n_full - 1) *
                             std::max(t_part, t_join) +
                         t_join;
      } else {
        result.seconds = static_cast<double>(n_full) * (t_part + t_join);
      }
      result.counters = part_avg.Scaled(static_cast<double>(n_full));
      result.counters += join_avg.Scaled(static_cast<double>(n_full));
      // Each window launches one partition and one join kernel.
      result.counters.kernel_launches = 2 * n_full;
      result.AddStage("partition/window", t_part);
      result.AddStage("join/window", t_join);

      // Degradation events extrapolate like the counters: per-window
      // tuple counts by window_scale, window counts by n_full/n_sim.
      const double window_factor =
          static_cast<double>(n_full) / static_cast<double>(n_sim);
      result.spilled_tuples =
          ScaleStat(stats.spilled_tuples, window_scale * window_factor);
      result.spill_buckets =
          ScaleStat(stats.spill_buckets, window_scale * window_factor);
      result.degraded_windows =
          ScaleStat(stats.degraded_windows, window_factor);
      result.fallback_windows =
          ScaleStat(stats.fallback_windows, window_factor);
      break;
    }
  }

  result.result_tuples = static_cast<uint64_t>(
      std::llround(static_cast<double>(matches) * scale));
  return result;
}

}  // namespace gpujoin::core
