#include "core/inlj.h"

#include "core/join_kernel.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <string>
#include <vector>

#include "partition/radix_partitioner.h"
#include "sim/phase.h"
#include "util/bit_util.h"
#include "util/check.h"
#include "util/rng.h"

namespace gpujoin::core {

namespace {

using partition::PartitionedKeys;
using partition::RadixPartitioner;
using workload::Key;

// Degradation events observed while running (simulated-sample scale;
// extrapolated to full scale by the caller).
struct ChunkStats {
  uint64_t spilled_tuples = 0;
  uint64_t spill_buckets = 0;
  uint64_t degraded_windows = 0;
  uint64_t fallback_windows = 0;
};

// Partitions and joins s[begin, begin+count) as one unit of work,
// applying the recovery ladder on failure:
//   partition-bucket overflow  -> spill chains (inside the partitioner)
//   allocation failure         -> halve the chunk and retry each half
//   still unpartitionable      -> join this chunk unpartitioned
//   anything else / fail-stop  -> propagate the error Status
// `top_level` marks the original window so a window halved more than once
// counts as one degraded window.
Status RunChunk(sim::Gpu& gpu, const index::Index& index,
                const workload::ProbeRelation& s,
                const RadixPartitioner& partitioner,
                const InljConfig& config, uint64_t begin, uint64_t count,
                mem::VirtAddr result_base, sim::KernelRun* part,
                sim::KernelRun* join, uint64_t* matches, ChunkStats* stats,
                bool top_level) {
  partition::PartitionOptions popts;
  popts.bucket_slack = config.bucket_slack;
  popts.spill_on_overflow = config.recovery.spill_on_overflow;

  Result<PartitionedKeys> parts = partitioner.Partition(
      gpu, s.keys.data().data() + begin, count, s.keys.addr_of(begin),
      begin, part, popts);
  if (parts.ok()) {
    stats->spilled_tuples += parts->spilled_tuples;
    stats->spill_buckets += parts->spill_buckets;
    join->Merge(internal::RunJoinKernel(
        gpu, index, parts->keys.data(), parts->row_ids.data(), count,
        parts->tuple_addr(0), result_base, config.probe_filter_selectivity,
        matches));
    return gpu.memory().fault_status();
  }

  // An unrecoverable injected fault (retry budget exhausted) ends the
  // run regardless of policy.
  Status fatal = gpu.memory().fault_status();
  if (!fatal.ok()) return fatal;
  if (parts.status().code() != StatusCode::kResourceExhausted) {
    return parts.status();
  }

  if (config.recovery.shrink_window_on_alloc_failure && count >= 64) {
    if (top_level) ++stats->degraded_windows;
    const uint64_t half = count / 2;
    Status st = RunChunk(gpu, index, s, partitioner, config, begin, half,
                         result_base, part, join, matches, stats,
                         /*top_level=*/false);
    if (!st.ok()) return st;
    return RunChunk(gpu, index, s, partitioner, config, begin + half,
                    count - half, result_base, part, join, matches, stats,
                    /*top_level=*/false);
  }

  if (config.recovery.fallback_to_unpartitioned) {
    ++stats->fallback_windows;
    join->Merge(internal::RunJoinKernel(
        gpu, index, s.keys.data().data() + begin, nullptr, count,
        s.keys.addr_of(begin), result_base, config.probe_filter_selectivity,
        matches));
    return gpu.memory().fault_status();
  }

  return parts.status();
}

uint64_t ScaleStat(uint64_t v, double f) {
  return static_cast<uint64_t>(std::llround(static_cast<double>(v) * f));
}

}  // namespace

const char* PartitionModeName(InljConfig::PartitionMode mode) {
  switch (mode) {
    case InljConfig::PartitionMode::kNone:
      return "none";
    case InljConfig::PartitionMode::kFull:
      return "full";
    case InljConfig::PartitionMode::kWindowed:
      return "windowed";
  }
  return "unknown";
}

Result<sim::RunResult> IndexNestedLoopJoin::Run(
    sim::Gpu& gpu, const index::Index& index,
    const workload::ProbeRelation& s, const InljConfig& config) {
  if (config.mode == InljConfig::PartitionMode::kWindowed) {
    if (config.window_tuples < sim::Warp::kWidth) {
      return Status::InvalidArgument(
          "window_tuples = " + std::to_string(config.window_tuples) +
          " is below one warp (" + std::to_string(sim::Warp::kWidth) +
          " tuples)");
    }
  }

  mem::AddressSpace& space = gpu.memory().space();
  const double scale = s.scale();
  const uint64_t sample = s.sample_size();

  // Result buffer: GPU memory by default (Sec. 3.2), CPU memory when
  // spilling (footnote 1). A fault-injected device allocation failure
  // degrades to the CPU-memory placement when the policy allows it.
  mem::Region result_region;
  bool result_fell_back_to_host = false;
  {
    Result<mem::Region> r = gpu.memory().TryReserve(
        sample * 16,
        config.spill_results_to_host ? mem::MemKind::kHost
                                     : mem::MemKind::kDevice,
        "inlj.result");
    if (r.ok()) {
      result_region = *r;
    } else if (config.recovery.spill_results_on_alloc_failure) {
      result_region =
          space.Reserve(sample * 16, mem::MemKind::kHost, "inlj.result");
      result_fell_back_to_host = true;
    } else {
      return r.status();
    }
  }

  sim::RunResult result;
  result.label = std::string("inlj_") + index.name();
  result.probe_tuples = s.full_size;
  result.result_buffer_on_host = result_fell_back_to_host;
  uint64_t matches = 0;
  ChunkStats stats;

  switch (config.mode) {
    case InljConfig::PartitionMode::kNone: {
      sim::KernelRun join = internal::RunJoinKernel(
          gpu, index, s.keys.data().data(), nullptr, sample,
          s.keys.addr_of(0), result_region.base,
          config.probe_filter_selectivity, &matches);
      Status st = gpu.memory().fault_status();
      if (!st.ok()) return st;
      join.counters = join.counters.Scaled(scale);
      result.seconds = gpu.TimeOf(join);
      result.counters = join.counters;
      result.AddStage("join", result.seconds);
      break;
    }

    case InljConfig::PartitionMode::kFull: {
      Result<partition::RadixPartitionSpec> spec = partition::PlanPartitionBits(
          index.column(), config.max_partition_bits, config.ignore_lsb);
      if (!spec.ok()) return spec.status();
      const RadixPartitioner partitioner(*spec);
      sim::KernelRun part{"partition", {}};
      sim::KernelRun join{"join", {}};
      Status st = RunChunk(gpu, index, s, partitioner, config, 0, sample,
                           result_region.base, &part, &join, &matches,
                           &stats, /*top_level=*/true);
      if (!st.ok()) return st;
      part.counters = part.counters.Scaled(scale);
      join.counters = join.counters.Scaled(scale);
      const double t_part = gpu.TimeOf(part);
      const double t_join = gpu.TimeOf(join);
      result.seconds = t_part + t_join;
      result.counters = part.counters;
      result.counters += join.counters;
      result.AddStage("partition", t_part);
      result.AddStage("join", t_join);
      result.spilled_tuples = ScaleStat(stats.spilled_tuples, scale);
      result.spill_buckets = ScaleStat(stats.spill_buckets, scale);
      result.degraded_windows = stats.degraded_windows;
      result.fallback_windows = stats.fallback_windows;
      break;
    }

    case InljConfig::PartitionMode::kWindowed: {
      Result<partition::RadixPartitionSpec> spec = partition::PlanPartitionBits(
          index.column(), config.max_partition_bits, config.ignore_lsb);
      if (!spec.ok()) return spec.status();
      const RadixPartitioner partitioner(*spec);

      // Simulate windows over the sample. For range-restricted samples
      // (full density over a 1/scale slice of R), a simulated window of
      // W/scale tuples has exactly a real window's per-partition density;
      // thinned samples fall back to sample-sized windows.
      // A window never holds more than the whole probe relation.
      const uint64_t w_full = std::min(config.window_tuples, s.full_size);
      uint64_t w_sim = std::min(w_full, sample);
      if (s.scheme == workload::SampleScheme::kRangeRestricted) {
        w_sim = std::clamp<uint64_t>(
            static_cast<uint64_t>(std::llround(
                static_cast<double>(w_full) / scale)),
            32, sample);
      }
      const double window_scale =
          static_cast<double>(w_full) / static_cast<double>(w_sim);
      const uint64_t n_sim = bits::CeilDiv(sample, w_sim);
      const uint64_t n_full = bits::CeilDiv(s.full_size, w_full);

      sim::CounterSet part_avg;
      sim::CounterSet join_avg;
      uint64_t simulated_tuples = 0;
      for (uint64_t w = 0; w < n_sim; ++w) {
        const uint64_t begin = w * w_sim;
        const uint64_t count = std::min(w_sim, sample - begin);
        simulated_tuples += count;
        // A real window's churn evicts the previous window's cache lines;
        // the sampled windows must not inherit each other's state.
        if (w > 0) gpu.memory().FlushCaches();

        sim::WindowScope window(gpu.memory().phase_sink(), w);
        sim::KernelRun part{"partition", {}};
        sim::KernelRun join{"join", {}};
        Status st = RunChunk(gpu, index, s, partitioner, config, begin,
                             count, result_region.base, &part, &join,
                             &matches, &stats, /*top_level=*/true);
        if (!st.ok()) return st;
        part_avg += part.counters;
        join_avg += join.counters;
      }

      // Average per-window counters, normalized to one full-size window.
      const double to_one_window =
          window_scale / static_cast<double>(n_sim);
      part_avg = part_avg.Scaled(to_one_window);
      join_avg = join_avg.Scaled(to_one_window);
      // Keep per-window launch costs: each window launches one partition
      // and one join kernel.
      part_avg.kernel_launches = 1;
      join_avg.kernel_launches = 1;

      const double t_part = gpu.cost_model().Seconds(part_avg) +
                            gpu.platform().gpu.stream_sync_overhead;
      const double t_join = gpu.cost_model().Seconds(join_avg);
      if (config.overlap && n_full > 1) {
        // Two CUDA streams: window t's partition overlaps window t-1's
        // join (Sec. 5.1).
        result.seconds = t_part +
                         static_cast<double>(n_full - 1) *
                             std::max(t_part, t_join) +
                         t_join;
      } else {
        result.seconds = static_cast<double>(n_full) * (t_part + t_join);
      }
      result.counters = part_avg.Scaled(static_cast<double>(n_full));
      result.counters += join_avg.Scaled(static_cast<double>(n_full));
      // Each window launches one partition and one join kernel.
      result.counters.kernel_launches = 2 * n_full;
      result.AddStage("partition/window", t_part);
      result.AddStage("join/window", t_join);

      // Degradation events extrapolate like the counters: per-window
      // tuple counts by window_scale, window counts by n_full/n_sim.
      const double window_factor =
          static_cast<double>(n_full) / static_cast<double>(n_sim);
      result.spilled_tuples =
          ScaleStat(stats.spilled_tuples, window_scale * window_factor);
      result.spill_buckets =
          ScaleStat(stats.spill_buckets, window_scale * window_factor);
      result.degraded_windows =
          ScaleStat(stats.degraded_windows, window_factor);
      result.fallback_windows =
          ScaleStat(stats.fallback_windows, window_factor);
      break;
    }
  }

  result.result_tuples = static_cast<uint64_t>(
      std::llround(static_cast<double>(matches) * scale));
  return result;
}

}  // namespace gpujoin::core
