#ifndef GPUJOIN_SERVE_INGEST_H_
#define GPUJOIN_SERVE_INGEST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "index/hybrid_index.h"
#include "mem/address_space.h"
#include "obs/ingest.h"
#include "serve/arrival.h"
#include "sim/cost_model.h"
#include "util/rng.h"
#include "util/status.h"
#include "workload/key_column.h"

namespace gpujoin::serve {

// Drives a seeded insert/update/delete stream against per-shard
// index::HybridIndex instances, concurrently with the serving loop, all
// on the simulated clock:
//
//  * writes land in each shard's active delta the moment they arrive;
//  * a shard whose delta crosses `merge_threshold` entries starts a
//    background merge (BeginMerge + HostStreamSeconds of simulated work);
//  * when the merge's work is done, the epoch swap completes and charges
//    one stream-sync stall to the serving clock — shard by shard, so a
//    swap never stalls the whole fleet;
//  * a full delta with a merge already in flight sheds the op
//    (ops_shed), never aborts.
//
// RequestServer::Run() calls AdvanceTo(batch start) before servicing each
// batch, so every write admitted before a batch is visible to it (through
// active/frozen/overlay, whichever layer it reached) — reads are never
// stale relative to admitted writes; the staleness histogram instead
// tracks how long writes wait before they are *merged* into the static
// side.
class IngestCoordinator {
 public:
  using Key = workload::Key;
  // Maps a key to the shard whose hybrid index owns it.
  using OwnerFn = std::function<int(Key)>;

  struct Config {
    // Op arrival process; rate 0 (or a non-positive rate) disables the
    // coordinator entirely — the server's event sequence is then
    // bit-identical to a run with no coordinator attached.
    ArrivalConfig ops{ArrivalModel::kPoisson, /*rate=*/0, 4.0, 1e-3, 42};
    // Op mix: inserts append fresh keys past the base column's max key;
    // updates and deletes draw uniform existing base keys. The remainder
    // (1 - insert - update) is the delete fraction.
    double insert_fraction = 0.5;
    double update_fraction = 0.3;
    // Active-delta entries per shard that trigger a background merge.
    uint64_t merge_threshold = uint64_t{1} << 14;
    uint64_t seed = 42;
    index::HybridIndex::Options hybrid;
    // Keep the applied-op log for oracle differential tests / benches.
    bool record_log = false;
  };

  struct Op {
    enum class Kind : uint8_t { kInsert, kUpdate, kDelete };
    Kind kind;
    Key key;
    uint64_t value;
    double at_seconds;
    int shard;
  };

  // Validates the config and builds one HybridIndex per shard over
  // `base` (all in `space`). `base`, `space` and `cost` must outlive the
  // coordinator.
  static Result<std::unique_ptr<IngestCoordinator>> Create(
      const Config& config, mem::AddressSpace* space,
      const workload::KeyColumn* base, const sim::CostModel* cost,
      int num_shards, OwnerFn owner);

  IngestCoordinator(const IngestCoordinator&) = delete;
  IngestCoordinator& operator=(const IngestCoordinator&) = delete;

  bool active() const { return config_.ops.rate > 0; }

  // Applies every op and merge completion with a simulated time <= now,
  // in chronological order. Returns the epoch-swap stall seconds to add
  // to the caller's service time (one stream-sync per completed swap).
  double AdvanceTo(double now);

  // Extra service seconds one batch of `tuples` probes pays for the
  // delta/overlay consults (0 when every mutable layer is empty).
  double LookupSurchargeSeconds(uint64_t tuples) const;

  // Records the merge staleness a reader at `now` observes: the age of
  // the oldest write not yet folded into an overlay, maxed over shards
  // (0 when everything is merged).
  void RecordBatchStaleness(double now);

  // End of run: applies the remaining ops and merge completions up to
  // `end_seconds` and freezes the footprint stats.
  void Finish(double end_seconds);

  // Reconciled read through the owning shard's hybrid index.
  std::optional<uint64_t> Find(Key key) const;

  const obs::IngestStats& stats() const { return stats_; }
  const std::vector<Op>& log() const { return log_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  const index::HybridIndex& shard_hybrid(int shard) const {
    return *shards_[shard].hybrid;
  }

 private:
  struct ShardState {
    std::unique_ptr<index::HybridIndex> hybrid;
    // Completion time of the in-flight merge; < 0 when none.
    double merge_end = -1;
    // Admission time of the oldest op still in the active / frozen
    // delta; infinity when that layer is empty.
    double oldest_active;
    double oldest_frozen;
  };

  IngestCoordinator(const Config& config, const sim::CostModel* cost,
                    OwnerFn owner, std::vector<ShardState> shards,
                    Key first_fresh_key, uint64_t base_size);

  void GenerateNextOp();
  void ApplyOp(const Op& op);
  void StartMerge(int shard, double at_seconds);
  double CompleteMerge(int shard);
  void SampleFootprint();

  Config config_;
  const sim::CostModel* cost_;
  OwnerFn owner_;
  std::vector<ShardState> shards_;

  ArrivalGenerator gen_;
  Xoshiro256 rng_;
  Key next_fresh_key_;     // next append key for inserts
  uint64_t base_size_;
  uint64_t value_seq_ = 0;  // distinct synthetic payloads
  Op next_op_{};
  bool next_op_valid_ = false;

  obs::IngestStats stats_;
  std::vector<Op> log_;
};

}  // namespace gpujoin::serve

#endif  // GPUJOIN_SERVE_INGEST_H_
