#ifndef GPUJOIN_SERVE_SERVER_H_
#define GPUJOIN_SERVE_SERVER_H_

#include <cstdint>
#include <vector>

#include "core/inlj.h"
#include "core/match.h"
#include "core/window_join.h"
#include "obs/histogram.h"
#include "obs/robustness.h"
#include "obs/tenant.h"
#include "serve/arrival.h"
#include "serve/batcher.h"
#include "serve/tenant.h"
#include "sim/gpu.h"
#include "util/status.h"
#include "workload/relation.h"

namespace gpujoin::serve {

class IngestCoordinator;
class ResultCache;

// What the server needs from an execution engine: service one
// contiguous slice of the probe sample and report its simulated service
// time. The default backend is a single core::WindowJoiner; the sharded
// engine (src/dist) fans a slice out across devices and returns the
// slowest shard's time plus the merge.
class WindowBackend {
 public:
  virtual ~WindowBackend() = default;

  // Length of the cyclic probe cursor the server slices over.
  virtual uint64_t sample_size() const = 0;

  // Services s[begin, begin + count); `ordinal` labels the window for
  // the phase timeline. Returns simulated seconds.
  virtual Result<double> ServiceSlice(uint64_t begin, uint64_t count,
                                      uint64_t ordinal) = 0;

  // Hedged re-issue: services the slice on the backend's replica plan —
  // a safe alternative execution the server falls back to when the
  // primary attempt runs past RetryPolicy::hedge_after. Defaults to the
  // primary path; plan::PlannedBackend overrides it to run the static
  // safe plan instead of the routed one.
  virtual Result<double> ServiceHedge(uint64_t begin, uint64_t count,
                                      uint64_t ordinal) {
    return ServiceSlice(begin, count, ordinal);
  }

  // ServiceSlice that additionally appends the slice's join matches to
  // *collect (the hook the hot-key result cache installs memoized results
  // through). A null `collect` is exactly ServiceSlice. Backends without
  // match materialization keep the default, which refuses non-null
  // collection with Unimplemented instead of silently returning an empty
  // match set.
  virtual Result<double> ServiceSliceCollect(
      uint64_t begin, uint64_t count, uint64_t ordinal,
      std::vector<core::JoinMatch>* collect) {
    if (collect != nullptr) {
      return Status::Unimplemented(
          "backend does not support match collection");
    }
    return ServiceSlice(begin, count, ordinal);
  }
};

// Deadline budgets, bounded seeded-backoff retries, and hedged re-issue
// for the serving loop. All defaults off: the server's event sequence,
// RNG draws and window ordinals are then bit-identical to a build
// without this machinery (first backend error stays fatal).
struct RetryPolicy {
  // Per-request budget in simulated seconds from arrival. A request
  // whose budget is already exhausted when its batch starts is shed
  // (never dispatched); one served past its budget counts as a deadline
  // miss. 0 disables.
  double deadline_seconds = 0;
  // Backoff retries allowed per batch slice when the backend errors;
  // 0 keeps the first error fatal. When the cap is exhausted the batch
  // is shed (its requests dropped, the server keeps running) instead of
  // surfacing the error — a stuck backend degrades to lost requests,
  // not a wedged server.
  int retry_cap = 0;
  // Simulated wait before the first retry; doubles per attempt, with a
  // seeded uniform +/- `backoff_jitter` fraction on top so retry storms
  // decorrelate. Deterministic for a fixed seed at any thread count.
  double backoff_base = 1e-5;
  double backoff_jitter = 0.2;
  uint64_t seed = 0x5EED;
  // Hedge trigger: when the primary attempt of a slice takes longer
  // than this, re-issue it to the replica plan (ServiceHedge) and keep
  // the faster of the two. 0 disables.
  double hedge_after = 0;

  bool enabled() const {
    return deadline_seconds > 0 || retry_cap > 0 || hedge_after > 0;
  }

  // InvalidArgument naming the offending field (negative or non-finite
  // deadline/hedge trigger, retry cap outside [0, 32], bad backoff).
  Status Validate() const;
};

struct ServeConfig {
  ArrivalConfig arrival;
  BatchPolicy batch;
  // Number of requests to generate (shed requests count toward this).
  uint64_t requests = 20000;
  // Probe tuples carried by each request.
  uint64_t tuples_per_request = 4096;
  // Admission bound: a request is shed when accepting it would push the
  // backlog (pending + in-flight tuples) past this. 0 disables shedding.
  uint64_t max_backlog_tuples = (uint64_t{256} << 20) / 8;  // 256 MiB
  RetryPolicy retry;
  // Multi-tenant mode (default off: num_tenants == 0 keeps the original
  // single-tenant event loop and its bit-identical output). See
  // serve/tenant.h.
  TenantConfig tenants;
  // Collects every served request's join matches into
  // ServeReport::matches (tenant mode only; needs a backend that
  // implements ServiceSliceCollect). The regression hook behind the
  // cache-on/off match-identity check — leave off for large runs.
  bool collect_matches = false;
};

// Event counts in the style of core::RecoveryPolicy's degradation
// counters: shedding is the serving layer's graceful-degradation rung.
struct ServeCounters {
  uint64_t requests_admitted = 0;
  uint64_t requests_shed = 0;
  uint64_t batches = 0;
  uint64_t tuples_served = 0;
  uint64_t deadline_batches = 0;  // closed by the deadline trigger
  uint64_t size_batches = 0;      // closed by the size trigger
  uint64_t window_grows = 0;
  uint64_t window_shrinks = 0;
};

struct ServeReport {
  ServeCounters counters;
  // Total per-request sojourn time (arrival to batch completion),
  // simulated seconds. Queueing and service sums are kept separately so
  // callers can split the mean.
  obs::LogHistogram latency;
  double queue_seconds_total = 0;
  double service_seconds_total = 0;
  // Completion time of the last batch — the makespan the throughput
  // figure divides by.
  double sim_seconds = 0;
  double offered_rate = 0;            // configured requests/s
  double achieved_requests_per_sec = 0;
  double achieved_tuples_per_sec = 0;
  uint64_t final_batch_tuples = 0;    // adaptive batch size at the end
  // Retry/hedge/deadline activity (all-zero with the default
  // RetryPolicy; retry_histogram[k] = batch slices that needed exactly
  // k backoff retries).
  obs::RobustnessStats robustness;
  // Tenant-mode accounting: per-tier admission/latency plus the result
  // cache's hit/eviction counters. Empty (any() == false) outside tenant
  // mode.
  obs::TenantStats tenants;
  // Every served request's join matches, in service order, when
  // ServeConfig::collect_matches is set (empty otherwise).
  std::vector<core::JoinMatch> matches;
};

// Streams simulated request arrivals into the windowed INLJ: an open-loop
// arrival process feeds a micro-batcher (size-or-deadline close, see
// BatchPolicy), each closed batch runs as one window through
// core::WindowJoiner over a cyclic cursor on the probe sample, and every
// request's sojourn time lands in a log-bucketed histogram. A single
// serving "GPU" drains batches in close order; admission control sheds
// requests once the backlog bound is hit, so overload degrades to lost
// requests instead of unbounded latency.
//
// Everything runs on the simulated clock (arrival gaps + cost-model
// window times); a fixed config and seed reproduce the run bit for bit.
class RequestServer {
 public:
  RequestServer(sim::Gpu& gpu, const index::Index& index,
                const workload::ProbeRelation& s,
                const core::InljConfig& inlj_config,
                const ServeConfig& serve_config)
      : gpu_(&gpu),
        index_(&index),
        s_(&s),
        inlj_config_(inlj_config),
        serve_config_(serve_config) {}

  // Serves against an externally owned backend (e.g. dist::ShardScheduler
  // fanning each batch out to shards). The backend must outlive Run().
  RequestServer(WindowBackend& backend, const ServeConfig& serve_config)
      : backend_(&backend), serve_config_(serve_config) {}

  // Attaches an HTAP ingest coordinator: before each batch the server
  // advances the write stream to the batch's start time (charging any
  // epoch-swap stalls) and surcharges the batch's probes with the
  // delta/overlay consults. An inactive coordinator (ingest rate 0) — or
  // none — leaves the serving run bit-identical to a build without
  // ingest. The coordinator must outlive Run().
  RequestServer& AttachIngest(IngestCoordinator* ingest) {
    ingest_ = ingest;
    return *this;
  }

  // Attaches the hot-key result cache (tenant mode with keyed requests
  // only; Run() rejects a cache without tenants.key_universe > 0). Not
  // owned; must outlive Run(). Null detaches.
  RequestServer& AttachCache(ResultCache* cache) {
    cache_ = cache;
    return *this;
  }

  Result<ServeReport> Run();

 private:
  // The multi-tenant event loop: token-bucket admission, per-tenant
  // queues drained FIFO or deficit-weighted-fair, keyed per-request
  // service with optional memoization.
  Result<ServeReport> RunTenants(WindowBackend& backend);

  WindowBackend* backend_ = nullptr;  // null: build a local WindowJoiner
  IngestCoordinator* ingest_ = nullptr;
  ResultCache* cache_ = nullptr;
  sim::Gpu* gpu_ = nullptr;
  const index::Index* index_ = nullptr;
  const workload::ProbeRelation* s_ = nullptr;
  core::InljConfig inlj_config_;
  ServeConfig serve_config_;
};

}  // namespace gpujoin::serve

#endif  // GPUJOIN_SERVE_SERVER_H_
