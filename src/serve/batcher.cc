#include "serve/batcher.h"

#include <algorithm>

namespace gpujoin::serve {

MicroBatcher::MicroBatcher(const BatchPolicy& policy)
    : policy_(policy),
      batch_tuples_(std::clamp(policy.batch_tuples, policy.min_batch_tuples,
                               policy.max_batch_tuples)) {}

void MicroBatcher::ObserveBacklog(uint64_t backlog_tuples) {
  if (!policy_.adaptive) return;
  if (backlog_tuples > 2 * batch_tuples_ &&
      batch_tuples_ < policy_.max_batch_tuples) {
    batch_tuples_ = std::min(batch_tuples_ * 2, policy_.max_batch_tuples);
    ++grows_;
  } else if (backlog_tuples < batch_tuples_ / 4 &&
             batch_tuples_ > policy_.min_batch_tuples) {
    batch_tuples_ = std::max(batch_tuples_ / 2, policy_.min_batch_tuples);
    ++shrinks_;
  }
}

}  // namespace gpujoin::serve
