#include "serve/batcher.h"

#include <algorithm>
#include <cmath>

namespace gpujoin::serve {

Status BatchPolicy::Validate() const {
  if (batch_tuples == 0) {
    return Status::InvalidArgument("batch.batch_tuples must be positive");
  }
  if (min_batch_tuples == 0) {
    return Status::InvalidArgument(
        "batch.min_batch_tuples must be positive");
  }
  if (min_batch_tuples > max_batch_tuples) {
    return Status::InvalidArgument(
        "batch.min_batch_tuples must not exceed batch.max_batch_tuples");
  }
  if (!(deadline_seconds > 0) || !std::isfinite(deadline_seconds)) {
    return Status::InvalidArgument(
        "batch.deadline_seconds must be finite and > 0 (a non-positive "
        "deadline would leave partial batches open forever)");
  }
  return Status();
}

MicroBatcher::MicroBatcher(const BatchPolicy& policy)
    : policy_(policy),
      // Not std::clamp: clamp is UB when min > max, and the batcher must
      // stay well-defined even for configs the caller forgot to
      // Validate(). min wins on an inverted band.
      batch_tuples_(std::max(policy.min_batch_tuples,
                             std::min(policy.batch_tuples,
                                      policy.max_batch_tuples))) {}

void MicroBatcher::ObserveBacklog(uint64_t backlog_tuples) {
  if (!policy_.adaptive) return;
  // The shrink threshold floors at one tuple: with batch_tuples_ < 4 the
  // integer division yields 0 and `backlog < 0` can never fire, pinning
  // tiny batches at their inflated size forever.
  const uint64_t shrink_below = std::max<uint64_t>(1, batch_tuples_ / 4);
  if (backlog_tuples > 2 * batch_tuples_ &&
      batch_tuples_ < policy_.max_batch_tuples) {
    batch_tuples_ = std::min(batch_tuples_ * 2, policy_.max_batch_tuples);
    ++grows_;
  } else if (backlog_tuples < shrink_below &&
             batch_tuples_ > policy_.min_batch_tuples) {
    batch_tuples_ = std::max(batch_tuples_ / 2, policy_.min_batch_tuples);
    ++shrinks_;
  }
}

}  // namespace gpujoin::serve
