#include "serve/tenant.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

namespace gpujoin::serve {

namespace {

// Bucket capacity: the configured burst, defaulting to one second of
// refill, floored at one request so a rate-limited tenant can always
// eventually send something.
double BucketCapacity(const TenantTier& tier, uint64_t tuples_per_request) {
  double cap = static_cast<double>(tier.burst_tuples);
  if (cap <= 0) cap = tier.rate_tuples_per_sec;
  return std::max(cap, static_cast<double>(tuples_per_request));
}

}  // namespace

Status TenantConfig::Validate() const {
  if (!enabled()) return Status();
  if (num_tenants > (uint64_t{1} << 32)) {
    return Status::InvalidArgument("tenants.num_tenants must fit in 32 bits");
  }
  if (tiers.empty()) {
    return Status::InvalidArgument(
        "tenants.tiers must be non-empty when tenants are enabled");
  }
  std::set<std::string> names;
  for (const TenantTier& tier : tiers) {
    if (tier.name.empty()) {
      return Status::InvalidArgument("tenants.tiers[].name must be non-empty");
    }
    if (!names.insert(tier.name).second) {
      return Status::InvalidArgument("tenants.tiers[].name must be unique: " +
                                     tier.name);
    }
    if (!(tier.weight > 0) || !std::isfinite(tier.weight)) {
      return Status::InvalidArgument(
          "tenants.tiers[].weight must be finite and > 0: " + tier.name);
    }
    if (tier.rate_tuples_per_sec < 0 ||
        !std::isfinite(tier.rate_tuples_per_sec)) {
      return Status::InvalidArgument(
          "tenants.tiers[].rate_tuples_per_sec must be finite and >= 0: " +
          tier.name);
    }
  }
  if (tenant_zipf < 0 || !std::isfinite(tenant_zipf)) {
    return Status::InvalidArgument(
        "tenants.tenant_zipf must be finite and >= 0");
  }
  if (key_zipf < 0 || !std::isfinite(key_zipf)) {
    return Status::InvalidArgument("tenants.key_zipf must be finite and >= 0");
  }
  if (rogue_extra < 0 || !std::isfinite(rogue_extra)) {
    return Status::InvalidArgument(
        "tenants.rogue_extra must be finite and >= 0");
  }
  if (rogue_extra > 0 && rogue_tenant >= num_tenants) {
    return Status::InvalidArgument(
        "tenants.rogue_tenant must be < tenants.num_tenants");
  }
  return Status();
}

Result<std::unique_ptr<TenantRouter>> TenantRouter::Create(
    const TenantConfig& config, uint64_t tuples_per_request) {
  Status st = config.Validate();
  if (!st.ok()) return st;
  if (!config.enabled()) {
    return Status::InvalidArgument(
        "tenants.num_tenants must be positive to create a TenantRouter");
  }
  if (tuples_per_request == 0) {
    return Status::InvalidArgument(
        "serve.tuples_per_request must be positive");
  }
  return std::unique_ptr<TenantRouter>(
      new TenantRouter(config, tuples_per_request));
}

TenantRouter::TenantRouter(const TenantConfig& config,
                           uint64_t tuples_per_request)
    : config_(config),
      tuples_per_request_(tuples_per_request),
      rng_(config.seed),
      tenant_sampler_(config.num_tenants, config.tenant_zipf),
      key_sampler_(std::max<uint64_t>(config.key_universe, 1),
                   config.key_zipf) {
  rogue_probability_ =
      config_.rogue_extra > 0
          ? config_.rogue_extra / (1.0 + config_.rogue_extra)
          : 0.0;
  buckets_.resize(config_.num_tenants);
  for (uint64_t t = 0; t < config_.num_tenants; ++t) {
    // Buckets start full: the first burst is free, like a freshly
    // provisioned quota.
    buckets_[t].level =
        BucketCapacity(config_.tiers[TierOf(t)], tuples_per_request_);
  }
  tenant_seen_.assign(config_.num_tenants, 0);
  queues_.resize(config_.num_tenants);
  tier_stats_.resize(config_.tiers.size());
  for (size_t i = 0; i < config_.tiers.size(); ++i) {
    tier_stats_[i].tier = config_.tiers[i].name;
    tier_stats_[i].weight = config_.tiers[i].weight;
    // Tenants map round-robin onto tiers.
    tier_stats_[i].tenants =
        config_.num_tenants / config_.tiers.size() +
        (i < config_.num_tenants % config_.tiers.size() ? 1 : 0);
  }
}

TenantRouter::Draw TenantRouter::NextArrival() {
  // Fixed draw order (coin, tenant, key) no matter which branch wins, so
  // the attribution stream of tenant N is unchanged when the rogue or
  // key knobs toggle.
  const double coin = rng_.NextDouble();
  const uint64_t rank = tenant_sampler_.Sample(rng_);
  const uint64_t key = key_sampler_.Sample(rng_);
  Draw draw;
  draw.rogue = rogue_probability_ > 0 && coin < rogue_probability_;
  draw.tenant = static_cast<uint32_t>(
      draw.rogue ? config_.rogue_tenant : rank);
  draw.tier = TierOf(draw.tenant);
  draw.key = config_.key_universe > 0 ? key : 0;
  return draw;
}

bool TenantRouter::Admit(const Draw& draw, double now, uint64_t tuples) {
  const TenantTier& tier = config_.tiers[draw.tier];
  if (tier.rate_tuples_per_sec <= 0) return true;
  Bucket& bucket = buckets_[draw.tenant];
  const double cap = BucketCapacity(tier, tuples_per_request_);
  if (now > bucket.last_refill) {
    bucket.level = std::min(
        cap, bucket.level +
                 tier.rate_tuples_per_sec * (now - bucket.last_refill));
    bucket.last_refill = now;
  }
  const double need = static_cast<double>(tuples);
  if (bucket.level + 1e-9 < need) {
    ++tier_stats_[draw.tier].shed_rate_limit;
    return false;
  }
  bucket.level -= need;
  return true;
}

void TenantRouter::Enqueue(const Draw& draw, uint64_t request_id) {
  ++tier_stats_[draw.tier].admitted;
  ++queued_requests_;
  if (config_.scheduler == TenantScheduler::kFifo) {
    fifo_.push_back(request_id);
    return;
  }
  TenantQueue& queue = queues_[draw.tenant];
  queue.requests.push_back(request_id);
  if (!queue.active) {
    queue.active = true;
    active_.push_back(draw.tenant);
  }
}

void TenantRouter::PopBatch(uint64_t budget_tuples,
                            std::vector<uint64_t>* out) {
  uint64_t popped = 0;
  if (config_.scheduler == TenantScheduler::kFifo) {
    while (!fifo_.empty() && (popped < budget_tuples || popped == 0)) {
      out->push_back(fifo_.front());
      fifo_.pop_front();
      popped += tuples_per_request_;
      --queued_requests_;
    }
    return;
  }
  // Deficit round robin over the active tenants: each visit credits the
  // tenant quantum = weight * tuples_per_request, and the tenant drains
  // whole requests while its deficit covers them. A backlogged weight-2
  // tenant therefore sends twice the requests per round of a weight-1
  // one, and an idle tenant accumulates nothing (deficit resets when its
  // queue empties). Always pops at least one request when non-empty.
  while (queued_requests_ > 0 && (popped < budget_tuples || popped == 0)) {
    const uint32_t tenant = active_.front();
    active_.pop_front();
    TenantQueue& queue = queues_[tenant];
    queue.deficit += config_.tiers[TierOf(tenant)].weight *
                     static_cast<double>(tuples_per_request_);
    while (!queue.requests.empty() &&
           queue.deficit + 1e-9 >= static_cast<double>(tuples_per_request_) &&
           (popped < budget_tuples || popped == 0)) {
      out->push_back(queue.requests.front());
      queue.requests.pop_front();
      queue.deficit -= static_cast<double>(tuples_per_request_);
      popped += tuples_per_request_;
      --queued_requests_;
    }
    if (queue.requests.empty()) {
      queue.deficit = 0;
      queue.active = false;
    } else {
      active_.push_back(tenant);
    }
  }
}

void TenantRouter::CountArrival(const Draw& draw) {
  ++tier_stats_[draw.tier].requests;
  ++tenant_seen_[draw.tenant];
  if (draw.rogue) ++rogue_requests_;
}

void TenantRouter::CountBacklogShed(const Draw& draw) {
  ++tier_stats_[draw.tier].shed_backlog;
}

void TenantRouter::CountServed(const Draw& draw, double latency_seconds) {
  ++tier_stats_[draw.tier].served;
  tier_stats_[draw.tier].latency.Record(latency_seconds);
}

void TenantRouter::FillStats(obs::TenantStats* stats) const {
  stats->scheduler = config_.scheduler == TenantScheduler::kFifo
                         ? "fifo"
                         : "fair";
  stats->tenants = config_.num_tenants;
  stats->tenants_seen = static_cast<uint64_t>(
      std::count_if(tenant_seen_.begin(), tenant_seen_.end(),
                    [](uint64_t n) { return n > 0; }));
  stats->rogue_requests = rogue_requests_;
  stats->tiers = tier_stats_;
}

}  // namespace gpujoin::serve
