#ifndef GPUJOIN_SERVE_ARRIVAL_H_
#define GPUJOIN_SERVE_ARRIVAL_H_

#include <cstdint>

#include "util/rng.h"
#include "util/status.h"

namespace gpujoin::serve {

// How request arrival times are drawn. All models run on the simulated
// clock and a seeded Xoshiro256 stream — no wall time anywhere, so a
// given config replays the identical arrival sequence.
enum class ArrivalModel : uint8_t {
  kDeterministic,  // fixed 1/rate gaps (closed-form, for exact tests)
  kPoisson,        // open-loop Poisson process at `rate`
  kOnOff,          // bursty: exponential on/off phases, arrivals only
                   // while on, long-run mean preserved at `rate`
};

const char* ArrivalModelName(ArrivalModel model);

struct ArrivalConfig {
  ArrivalModel model = ArrivalModel::kPoisson;
  // Long-run mean arrival rate, requests per simulated second.
  double rate = 1e5;
  // kOnOff: arrival rate while on is rate * burst_factor; the off phase
  // is sized so the long-run mean stays `rate` (on fraction
  // 1/burst_factor). Must be > 1.
  double burst_factor = 4.0;
  // kOnOff: mean duration of an on phase in simulated seconds.
  double mean_on_seconds = 1e-3;
  uint64_t seed = 42;

  // InvalidArgument naming the offending field when the config cannot
  // produce a monotone arrival stream: a non-positive/non-finite rate,
  // or kOnOff with burst_factor <= 1 (the off phase would have
  // non-positive length — the documented "Must be > 1" that nothing used
  // to enforce) or a non-positive mean_on_seconds. Called by
  // serve::RequestServer at construction and by bench flag parsing.
  Status Validate() const;
};

// Generates a monotone stream of absolute arrival times starting at 0.
class ArrivalGenerator {
 public:
  explicit ArrivalGenerator(const ArrivalConfig& config);

  // Absolute simulated time of the next arrival.
  double Next();

  // Rewinds to the start of the (identical) arrival sequence.
  void Reset();

 private:
  double ExpGap(double rate);

  ArrivalConfig config_;
  Xoshiro256 rng_;
  double now_ = 0;
  bool on_ = true;
  double phase_end_ = 0;
};

}  // namespace gpujoin::serve

#endif  // GPUJOIN_SERVE_ARRIVAL_H_
