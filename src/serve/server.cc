#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "serve/cache.h"
#include "serve/ingest.h"
#include "util/rng.h"

namespace gpujoin::serve {

namespace {

// Default backend: one windowed joiner on one simulated GPU, exactly the
// pre-backend serving path (regression: RequestServer runs on it are
// bit-identical to the original inline-joiner loop).
class LocalBackend final : public WindowBackend {
 public:
  LocalBackend(core::WindowJoiner joiner, uint64_t sample)
      : joiner_(std::move(joiner)), sample_(sample) {}

  uint64_t sample_size() const override { return sample_; }

  Result<double> ServiceSlice(uint64_t begin, uint64_t count,
                              uint64_t ordinal) override {
    return ServiceSliceCollect(begin, count, ordinal, nullptr);
  }

  Result<double> ServiceSliceCollect(
      uint64_t begin, uint64_t count, uint64_t ordinal,
      std::vector<core::JoinMatch>* collect) override {
    Result<core::WindowRun> run =
        joiner_.RunWindow(begin, count, ordinal, collect);
    if (!run.ok()) return run.status();
    return run->seconds();
  }

 private:
  core::WindowJoiner joiner_;
  uint64_t sample_;
};

}  // namespace

Status RetryPolicy::Validate() const {
  if (deadline_seconds < 0 || !std::isfinite(deadline_seconds)) {
    return Status::InvalidArgument(
        "retry.deadline_seconds must be finite and >= 0");
  }
  if (retry_cap < 0 || retry_cap > 32) {
    return Status::InvalidArgument("retry.retry_cap must be in [0, 32]");
  }
  if (retry_cap > 0 && !(backoff_base > 0)) {
    return Status::InvalidArgument(
        "retry.backoff_base must be > 0 when retries are enabled");
  }
  if (backoff_jitter < 0 || backoff_jitter > 1) {
    return Status::InvalidArgument(
        "retry.backoff_jitter must be in [0, 1]");
  }
  if (hedge_after < 0 || !std::isfinite(hedge_after)) {
    return Status::InvalidArgument(
        "retry.hedge_after must be finite and >= 0");
  }
  return Status();
}

Result<ServeReport> RequestServer::Run() {
  if (serve_config_.requests == 0) {
    return Status::InvalidArgument("serving run needs at least one request");
  }
  if (serve_config_.tuples_per_request == 0) {
    return Status::InvalidArgument("tuples_per_request must be positive");
  }
  if (Status st = serve_config_.arrival.Validate(); !st.ok()) return st;
  if (Status st = serve_config_.batch.Validate(); !st.ok()) return st;
  if (Status st = serve_config_.tenants.Validate(); !st.ok()) return st;
  const RetryPolicy& retry = serve_config_.retry;
  if (Status st = retry.Validate(); !st.ok()) return st;

  const uint64_t tpr = serve_config_.tuples_per_request;

  std::unique_ptr<LocalBackend> local;
  WindowBackend* backend = backend_;
  if (backend == nullptr) {
    Result<core::WindowJoiner> joiner = core::WindowJoiner::Create(
        *gpu_, *index_, *s_, inlj_config_, s_->sample_size());
    if (!joiner.ok()) return joiner.status();
    local = std::make_unique<LocalBackend>(*std::move(joiner),
                                           s_->sample_size());
    backend = local.get();
  }
  const uint64_t sample = backend->sample_size();

  if (serve_config_.tenants.enabled()) return RunTenants(*backend);
  if (cache_ != nullptr) {
    return Status::InvalidArgument(
        "result cache requires tenant mode (tenants.num_tenants > 0)");
  }
  if (serve_config_.collect_matches) {
    return Status::InvalidArgument(
        "collect_matches requires tenant mode (tenants.num_tenants > 0)");
  }

  ArrivalGenerator gen(serve_config_.arrival);
  MicroBatcher batcher(serve_config_.batch);

  ServeReport report;
  report.offered_rate = serve_config_.arrival.rate;

  // Backoff jitter stream: all draws happen on this (single) event-loop
  // thread in batch order, so a fixed seed reproduces the run at any
  // backend thread count. Never drawn with the default policy.
  Xoshiro256 retry_rng(SplitMix64(retry.seed));
  if (retry.retry_cap > 0) {
    report.robustness.retry_histogram.assign(
        static_cast<size_t>(retry.retry_cap) + 1, 0);
  }

  // Pending request arrival times (each request carries `tpr` tuples)
  // and dispatched-but-unfinished batches as (completion time, tuples).
  // backlog = pending + in-flight tuples; it is what admission control
  // bounds and what the adaptive batcher steers by.
  std::deque<double> pending;
  std::deque<std::pair<double, uint64_t>> in_flight;
  uint64_t pending_tuples = 0;
  uint64_t in_flight_tuples = 0;
  double server_free = 0;
  uint64_t cursor = 0;   // cyclic position in the probe sample
  uint64_t ordinal = 0;  // window ordinal for the phase timeline

  auto advance = [&](double now) {
    while (!in_flight.empty() && in_flight.front().first <= now) {
      in_flight_tuples -= in_flight.front().second;
      in_flight.pop_front();
    }
  };

  // Closes the batch of everything pending at `close_t`: services it as
  // windows over the cyclic sample cursor, charges each request its
  // sojourn time, and lets the batcher see the post-close backlog.
  auto close_batch = [&](double close_t, bool by_deadline) -> Status {
    const double start = std::max(close_t, server_free);

    // Deadline budgets: a request whose budget already ran out by the
    // time its batch would start cannot be served in time, so it is
    // shed before dispatch (oldest arrivals first — they doom first).
    if (retry.deadline_seconds > 0) {
      while (!pending.empty() &&
             pending.front() + retry.deadline_seconds < start) {
        pending.pop_front();
        pending_tuples -= tpr;
        ++report.robustness.shed_deadline;
      }
      if (pending.empty()) {
        batcher.ObserveBacklog(in_flight_tuples);
        return Status();
      }
    }

    const uint64_t n_requests = pending.size();
    const uint64_t n_tuples = pending_tuples;

    double service = 0;
    if (ingest_ != nullptr && ingest_->active()) {
      // Writes admitted before this batch land in the deltas now (epoch
      // swaps completing in the gap stall the batch), and every probe
      // pays the delta/overlay consult surcharge.
      service += ingest_->AdvanceTo(start);
      ingest_->RecordBatchStaleness(start);
      service += ingest_->LookupSurchargeSeconds(n_tuples);
    }
    uint64_t remaining = n_tuples;
    while (remaining > 0) {
      const uint64_t take = std::min(remaining, sample - cursor);

      // Bounded seeded-backoff retry around the slice. With the default
      // retry_cap == 0 the first backend error stays fatal, exactly the
      // pre-retry behaviour.
      double slice_time = 0;
      int attempts = 0;
      for (;;) {
        Result<double> slice =
            backend->ServiceSlice(cursor, take, ordinal++);
        if (slice.ok()) {
          slice_time = *slice;
          break;
        }
        if (attempts >= retry.retry_cap) {
          if (retry.retry_cap == 0) return slice.status();
          // Cap exhausted: shed this batch's requests and keep serving.
          // A permanently-stuck backend degrades to lost requests with
          // the backoff charged, not a wedged server.
          report.robustness.shed_retry_exhausted += n_requests;
          ++report.robustness.retry_histogram[static_cast<size_t>(
              attempts)];
          server_free = start + service;
          report.sim_seconds = std::max(report.sim_seconds, server_free);
          pending.clear();
          pending_tuples = 0;
          batcher.ObserveBacklog(in_flight_tuples);
          return Status();
        }
        double wait = retry.backoff_base * std::ldexp(1.0, attempts);
        if (retry.backoff_jitter > 0) {
          wait *= 1.0 + retry.backoff_jitter *
                            (2.0 * retry_rng.NextDouble() - 1.0);
        }
        service += wait;
        ++attempts;
        ++report.robustness.retries;
      }

      // Hedged re-issue: a primary attempt running past the trigger is
      // raced against the replica plan; the faster result wins.
      if (retry.hedge_after > 0 && slice_time > retry.hedge_after) {
        ++report.robustness.hedges;
        Result<double> hedge =
            backend->ServiceHedge(cursor, take, ordinal++);
        if (hedge.ok()) {
          const double hedged = retry.hedge_after + *hedge;
          if (hedged < slice_time) {
            slice_time = hedged;
            ++report.robustness.hedge_wins;
          }
        }
      }
      if (!report.robustness.retry_histogram.empty()) {
        ++report.robustness.retry_histogram[static_cast<size_t>(attempts)];
      }

      service += slice_time;
      cursor += take;
      if (cursor == sample) cursor = 0;
      remaining -= take;
    }

    const double end = start + service;
    server_free = end;
    for (double arrival : pending) {
      report.latency.Record(end - arrival);
      report.queue_seconds_total += start - arrival;
      if (retry.deadline_seconds > 0 &&
          end - arrival > retry.deadline_seconds) {
        ++report.robustness.deadline_misses;
      }
    }
    report.service_seconds_total +=
        service * static_cast<double>(n_requests);
    pending.clear();
    pending_tuples = 0;
    in_flight.emplace_back(end, n_tuples);
    in_flight_tuples += n_tuples;

    ++report.counters.batches;
    report.counters.tuples_served += n_tuples;
    if (by_deadline) {
      ++report.counters.deadline_batches;
    } else {
      ++report.counters.size_batches;
    }
    report.sim_seconds = std::max(report.sim_seconds, end);

    batcher.ObserveBacklog(pending_tuples + in_flight_tuples);
    return Status();
  };

  for (uint64_t i = 0; i < serve_config_.requests; ++i) {
    const double t = gen.Next();

    // Deadlines that expire before this arrival close their batch first.
    while (!pending.empty()) {
      const double deadline = batcher.DeadlineFor(pending.front());
      if (deadline >= t) break;
      advance(deadline);
      Status st = close_batch(deadline, /*by_deadline=*/true);
      if (!st.ok()) return st;
    }
    advance(t);

    if (serve_config_.max_backlog_tuples > 0 &&
        pending_tuples + in_flight_tuples + tpr >
            serve_config_.max_backlog_tuples) {
      ++report.counters.requests_shed;
      continue;
    }
    ++report.counters.requests_admitted;
    pending.push_back(t);
    pending_tuples += tpr;

    if (batcher.SizeTriggered(pending_tuples)) {
      Status st = close_batch(t, /*by_deadline=*/false);
      if (!st.ok()) return st;
    }
  }

  // Drain: the stream ended, so the remaining requests go out on their
  // deadline.
  while (!pending.empty()) {
    const double deadline = batcher.DeadlineFor(pending.front());
    advance(deadline);
    Status st = close_batch(deadline, /*by_deadline=*/true);
    if (!st.ok()) return st;
  }

  if (ingest_ != nullptr && ingest_->active()) {
    ingest_->Finish(report.sim_seconds);
  }

  report.counters.window_grows = batcher.grows();
  report.counters.window_shrinks = batcher.shrinks();
  report.final_batch_tuples = batcher.batch_tuples();
  if (report.sim_seconds > 0) {
    report.achieved_requests_per_sec =
        static_cast<double>(report.counters.requests_admitted) /
        report.sim_seconds;
    report.achieved_tuples_per_sec =
        static_cast<double>(report.counters.tuples_served) /
        report.sim_seconds;
  }
  return report;
}

Result<ServeReport> RequestServer::RunTenants(WindowBackend& backend) {
  const TenantConfig& tenants = serve_config_.tenants;
  const uint64_t tpr = serve_config_.tuples_per_request;
  const uint64_t sample = backend.sample_size();

  // Tenant mode composes with admission control and adaptive batching but
  // not (yet) with the retry/hedge machinery or online ingest; reject the
  // combinations instead of silently ignoring the knobs.
  if (serve_config_.retry.enabled()) {
    return Status::InvalidArgument(
        "tenant mode does not compose with retry.deadline_seconds / "
        "retry.retry_cap / retry.hedge_after yet");
  }
  if (ingest_ != nullptr && ingest_->active()) {
    return Status::InvalidArgument(
        "tenant mode does not compose with an active ingest coordinator");
  }
  if (tenants.key_universe > 0 && tenants.key_universe * tpr > sample) {
    return Status::InvalidArgument(
        "tenants.key_universe * tuples_per_request must not exceed the "
        "probe sample size");
  }
  if (cache_ != nullptr && tenants.key_universe == 0) {
    return Status::InvalidArgument(
        "result cache requires keyed requests (tenants.key_universe > 0)");
  }

  Result<std::unique_ptr<TenantRouter>> router_or =
      TenantRouter::Create(tenants, tpr);
  if (!router_or.ok()) return router_or.status();
  TenantRouter& router = **router_or;

  // The rogue flood rides on top of the configured arrival rate: the
  // generator runs (1 + rogue_extra)x faster and the router's attribution
  // coin assigns the surplus to the rogue tenant, so the well-behaved
  // tenants' offered load matches the rogue-free run.
  ArrivalConfig arrival = serve_config_.arrival;
  arrival.rate *= 1.0 + tenants.rogue_extra;
  ArrivalGenerator gen(arrival);
  MicroBatcher batcher(serve_config_.batch);

  ServeReport report;
  report.offered_rate = serve_config_.arrival.rate;

  struct Request {
    double arrival = 0;
    TenantRouter::Draw draw;
    bool served = false;
  };
  std::vector<Request> requests;
  // Queued request ids in arrival order; served entries are skipped
  // lazily, so the front yields the oldest queued arrival for the
  // deadline trigger.
  std::deque<uint64_t> queued_order;
  auto oldest_queued = [&]() -> const Request* {
    while (!queued_order.empty() &&
           requests[queued_order.front()].served) {
      queued_order.pop_front();
    }
    return queued_order.empty() ? nullptr : &requests[queued_order.front()];
  };

  std::deque<std::pair<double, uint64_t>> in_flight;
  uint64_t in_flight_tuples = 0;
  double server_free = 0;
  uint64_t cursor = 0;   // cyclic cursor, used when key_universe == 0
  uint64_t ordinal = 0;
  std::vector<uint64_t> batch_ids;
  std::vector<core::JoinMatch> scratch;

  auto advance = [&](double now) {
    while (!in_flight.empty() && in_flight.front().first <= now) {
      in_flight_tuples -= in_flight.front().second;
      in_flight.pop_front();
    }
  };

  // Services one request's probe slice, memoizing through the cache when
  // attached. Adds the simulated time to *service.
  auto serve_request = [&](const Request& req, double* service) -> Status {
    std::vector<core::JoinMatch>* out =
        serve_config_.collect_matches ? &report.matches : nullptr;
    if (tenants.key_universe == 0) {
      // Legacy cyclic slicing: the request's tuples come from wherever
      // the cursor points, wrapping at the sample boundary.
      uint64_t remaining = tpr;
      while (remaining > 0) {
        const uint64_t take = std::min(remaining, sample - cursor);
        Result<double> slice =
            backend.ServiceSliceCollect(cursor, take, ordinal++, out);
        if (!slice.ok()) return slice.status();
        *service += *slice;
        cursor += take;
        if (cursor == sample) cursor = 0;
        remaining -= take;
      }
      return Status();
    }
    const uint64_t begin = req.draw.key * tpr;
    if (cache_ != nullptr && cache_->Lookup(req.draw.key, out, service)) {
      return Status();
    }
    if (cache_ != nullptr) {
      scratch.clear();
      Result<double> slice =
          backend.ServiceSliceCollect(begin, tpr, ordinal++, &scratch);
      if (!slice.ok()) return slice.status();
      *service += *slice;
      if (out != nullptr) {
        out->insert(out->end(), scratch.begin(), scratch.end());
      }
      cache_->Insert(req.draw.key, scratch, service);
      return Status();
    }
    Result<double> slice =
        backend.ServiceSliceCollect(begin, tpr, ordinal++, out);
    if (!slice.ok()) return slice.status();
    *service += *slice;
    return Status();
  };

  // Closes one batch at `close_t`: the scheduler picks up to the current
  // adaptive batch size from the queues (FIFO or deficit-weighted fair),
  // the batch is serviced request by request, and each request's sojourn
  // lands in its tier's histogram.
  auto close_batch = [&](double close_t, bool by_deadline) -> Status {
    batch_ids.clear();
    router.PopBatch(batcher.batch_tuples(), &batch_ids);
    if (batch_ids.empty()) return Status();
    const double start = std::max(close_t, server_free);

    double service = 0;
    for (uint64_t id : batch_ids) {
      requests[id].served = true;
      if (Status st = serve_request(requests[id], &service); !st.ok()) {
        return st;
      }
    }

    const double end = start + service;
    server_free = end;
    const uint64_t n_tuples = batch_ids.size() * tpr;
    for (uint64_t id : batch_ids) {
      const Request& req = requests[id];
      report.latency.Record(end - req.arrival);
      report.queue_seconds_total += start - req.arrival;
      router.CountServed(req.draw, end - req.arrival);
    }
    report.service_seconds_total +=
        service * static_cast<double>(batch_ids.size());
    in_flight.emplace_back(end, n_tuples);
    in_flight_tuples += n_tuples;

    ++report.counters.batches;
    report.counters.tuples_served += n_tuples;
    if (by_deadline) {
      ++report.counters.deadline_batches;
    } else {
      ++report.counters.size_batches;
    }
    report.sim_seconds = std::max(report.sim_seconds, end);

    batcher.ObserveBacklog(router.queued_requests() * tpr +
                           in_flight_tuples);
    return Status();
  };

  for (uint64_t i = 0; i < serve_config_.requests; ++i) {
    const double t = gen.Next();

    // Deadlines that expire before this arrival close their batch first.
    for (const Request* oldest = oldest_queued(); oldest != nullptr;
         oldest = oldest_queued()) {
      const double deadline = batcher.DeadlineFor(oldest->arrival);
      if (deadline >= t) break;
      advance(deadline);
      if (Status st = close_batch(deadline, /*by_deadline=*/true);
          !st.ok()) {
        return st;
      }
    }
    advance(t);

    TenantRouter::Draw draw = router.NextArrival();
    router.CountArrival(draw);
    if (!router.Admit(draw, t, tpr)) {
      ++report.counters.requests_shed;
      continue;
    }
    if (serve_config_.max_backlog_tuples > 0 &&
        router.queued_requests() * tpr + in_flight_tuples + tpr >
            serve_config_.max_backlog_tuples) {
      ++report.counters.requests_shed;
      router.CountBacklogShed(draw);
      continue;
    }
    ++report.counters.requests_admitted;
    const uint64_t id = requests.size();
    requests.push_back(Request{t, draw, false});
    queued_order.push_back(id);
    router.Enqueue(draw, id);

    if (batcher.SizeTriggered(router.queued_requests() * tpr)) {
      if (Status st = close_batch(t, /*by_deadline=*/false); !st.ok()) {
        return st;
      }
    }
  }

  // Drain: remaining queued requests go out on their deadlines, in
  // scheduling order, one bounded batch at a time.
  for (const Request* oldest = oldest_queued(); oldest != nullptr;
       oldest = oldest_queued()) {
    const double deadline = batcher.DeadlineFor(oldest->arrival);
    advance(deadline);
    if (Status st = close_batch(deadline, /*by_deadline=*/true); !st.ok()) {
      return st;
    }
  }

  report.counters.window_grows = batcher.grows();
  report.counters.window_shrinks = batcher.shrinks();
  report.final_batch_tuples = batcher.batch_tuples();
  if (report.sim_seconds > 0) {
    report.achieved_requests_per_sec =
        static_cast<double>(report.counters.requests_admitted) /
        report.sim_seconds;
    report.achieved_tuples_per_sec =
        static_cast<double>(report.counters.tuples_served) /
        report.sim_seconds;
  }
  router.FillStats(&report.tenants);
  if (cache_ != nullptr) report.tenants.cache = cache_->FinalStats();
  return report;
}

}  // namespace gpujoin::serve
