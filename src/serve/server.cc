#include "serve/server.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <utility>

namespace gpujoin::serve {

namespace {

// Default backend: one windowed joiner on one simulated GPU, exactly the
// pre-backend serving path (regression: RequestServer runs on it are
// bit-identical to the original inline-joiner loop).
class LocalBackend final : public WindowBackend {
 public:
  LocalBackend(core::WindowJoiner joiner, uint64_t sample)
      : joiner_(std::move(joiner)), sample_(sample) {}

  uint64_t sample_size() const override { return sample_; }

  Result<double> ServiceSlice(uint64_t begin, uint64_t count,
                              uint64_t ordinal) override {
    Result<core::WindowRun> run = joiner_.RunWindow(begin, count, ordinal);
    if (!run.ok()) return run.status();
    return run->seconds();
  }

 private:
  core::WindowJoiner joiner_;
  uint64_t sample_;
};

}  // namespace

Result<ServeReport> RequestServer::Run() {
  if (serve_config_.requests == 0) {
    return Status::InvalidArgument("serving run needs at least one request");
  }
  if (serve_config_.tuples_per_request == 0) {
    return Status::InvalidArgument("tuples_per_request must be positive");
  }
  if (!(serve_config_.arrival.rate > 0)) {
    return Status::InvalidArgument("arrival rate must be positive");
  }
  if (serve_config_.arrival.model == ArrivalModel::kOnOff &&
      !(serve_config_.arrival.burst_factor > 1)) {
    return Status::InvalidArgument(
        "on/off arrivals need burst_factor > 1 (otherwise use poisson)");
  }

  const uint64_t tpr = serve_config_.tuples_per_request;

  std::unique_ptr<LocalBackend> local;
  WindowBackend* backend = backend_;
  if (backend == nullptr) {
    Result<core::WindowJoiner> joiner = core::WindowJoiner::Create(
        *gpu_, *index_, *s_, inlj_config_, s_->sample_size());
    if (!joiner.ok()) return joiner.status();
    local = std::make_unique<LocalBackend>(*std::move(joiner),
                                           s_->sample_size());
    backend = local.get();
  }
  const uint64_t sample = backend->sample_size();

  ArrivalGenerator gen(serve_config_.arrival);
  MicroBatcher batcher(serve_config_.batch);

  ServeReport report;
  report.offered_rate = serve_config_.arrival.rate;

  // Pending request arrival times (each request carries `tpr` tuples)
  // and dispatched-but-unfinished batches as (completion time, tuples).
  // backlog = pending + in-flight tuples; it is what admission control
  // bounds and what the adaptive batcher steers by.
  std::deque<double> pending;
  std::deque<std::pair<double, uint64_t>> in_flight;
  uint64_t pending_tuples = 0;
  uint64_t in_flight_tuples = 0;
  double server_free = 0;
  uint64_t cursor = 0;   // cyclic position in the probe sample
  uint64_t ordinal = 0;  // window ordinal for the phase timeline

  auto advance = [&](double now) {
    while (!in_flight.empty() && in_flight.front().first <= now) {
      in_flight_tuples -= in_flight.front().second;
      in_flight.pop_front();
    }
  };

  // Closes the batch of everything pending at `close_t`: services it as
  // windows over the cyclic sample cursor, charges each request its
  // sojourn time, and lets the batcher see the post-close backlog.
  auto close_batch = [&](double close_t, bool by_deadline) -> Status {
    const uint64_t n_requests = pending.size();
    const uint64_t n_tuples = pending_tuples;
    const double start = std::max(close_t, server_free);

    double service = 0;
    uint64_t remaining = n_tuples;
    while (remaining > 0) {
      const uint64_t take = std::min(remaining, sample - cursor);
      Result<double> slice = backend->ServiceSlice(cursor, take, ordinal++);
      if (!slice.ok()) return slice.status();
      service += *slice;
      cursor += take;
      if (cursor == sample) cursor = 0;
      remaining -= take;
    }

    const double end = start + service;
    server_free = end;
    for (double arrival : pending) {
      report.latency.Record(end - arrival);
      report.queue_seconds_total += start - arrival;
    }
    report.service_seconds_total +=
        service * static_cast<double>(n_requests);
    pending.clear();
    pending_tuples = 0;
    in_flight.emplace_back(end, n_tuples);
    in_flight_tuples += n_tuples;

    ++report.counters.batches;
    report.counters.tuples_served += n_tuples;
    if (by_deadline) {
      ++report.counters.deadline_batches;
    } else {
      ++report.counters.size_batches;
    }
    report.sim_seconds = std::max(report.sim_seconds, end);

    batcher.ObserveBacklog(pending_tuples + in_flight_tuples);
    return Status();
  };

  for (uint64_t i = 0; i < serve_config_.requests; ++i) {
    const double t = gen.Next();

    // Deadlines that expire before this arrival close their batch first.
    while (!pending.empty()) {
      const double deadline = batcher.DeadlineFor(pending.front());
      if (deadline >= t) break;
      advance(deadline);
      Status st = close_batch(deadline, /*by_deadline=*/true);
      if (!st.ok()) return st;
    }
    advance(t);

    if (serve_config_.max_backlog_tuples > 0 &&
        pending_tuples + in_flight_tuples + tpr >
            serve_config_.max_backlog_tuples) {
      ++report.counters.requests_shed;
      continue;
    }
    ++report.counters.requests_admitted;
    pending.push_back(t);
    pending_tuples += tpr;

    if (batcher.SizeTriggered(pending_tuples)) {
      Status st = close_batch(t, /*by_deadline=*/false);
      if (!st.ok()) return st;
    }
  }

  // Drain: the stream ended, so the remaining requests go out on their
  // deadline.
  while (!pending.empty()) {
    const double deadline = batcher.DeadlineFor(pending.front());
    advance(deadline);
    Status st = close_batch(deadline, /*by_deadline=*/true);
    if (!st.ok()) return st;
  }

  report.counters.window_grows = batcher.grows();
  report.counters.window_shrinks = batcher.shrinks();
  report.final_batch_tuples = batcher.batch_tuples();
  if (report.sim_seconds > 0) {
    report.achieved_requests_per_sec =
        static_cast<double>(report.counters.requests_admitted) /
        report.sim_seconds;
    report.achieved_tuples_per_sec =
        static_cast<double>(report.counters.tuples_served) /
        report.sim_seconds;
  }
  return report;
}

}  // namespace gpujoin::serve
