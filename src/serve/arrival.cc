#include "serve/arrival.h"

#include <cmath>

namespace gpujoin::serve {

const char* ArrivalModelName(ArrivalModel model) {
  switch (model) {
    case ArrivalModel::kDeterministic:
      return "deterministic";
    case ArrivalModel::kPoisson:
      return "poisson";
    case ArrivalModel::kOnOff:
      return "onoff";
  }
  return "unknown";
}

Status ArrivalConfig::Validate() const {
  if (!(rate > 0) || !std::isfinite(rate)) {
    return Status::InvalidArgument(
        "arrival.rate must be finite and > 0");
  }
  if (model == ArrivalModel::kOnOff) {
    if (!(burst_factor > 1) || !std::isfinite(burst_factor)) {
      return Status::InvalidArgument(
          "arrival.burst_factor must be finite and > 1 for on/off "
          "arrivals (otherwise use poisson)");
    }
    if (!(mean_on_seconds > 0) || !std::isfinite(mean_on_seconds)) {
      return Status::InvalidArgument(
          "arrival.mean_on_seconds must be finite and > 0 for on/off "
          "arrivals");
    }
  }
  return Status();
}

ArrivalGenerator::ArrivalGenerator(const ArrivalConfig& config)
    : config_(config), rng_(config.seed) {
  Reset();
}

void ArrivalGenerator::Reset() {
  rng_ = Xoshiro256(config_.seed);
  now_ = 0;
  on_ = true;
  phase_end_ =
      config_.model == ArrivalModel::kOnOff
          ? ExpGap(1.0 / config_.mean_on_seconds)
          : 0;
}

double ArrivalGenerator::ExpGap(double rate) {
  // Inverse-CDF draw; log1p(-u) is exact near u = 0 where log(1 - u)
  // would cancel.
  return -std::log1p(-rng_.NextDouble()) / rate;
}

double ArrivalGenerator::Next() {
  switch (config_.model) {
    case ArrivalModel::kDeterministic:
      now_ += 1.0 / config_.rate;
      return now_;

    case ArrivalModel::kPoisson:
      now_ += ExpGap(config_.rate);
      return now_;

    case ArrivalModel::kOnOff: {
      // Arrivals run at rate * burst_factor inside on phases; an on
      // fraction of 1/burst_factor keeps the long-run mean at `rate`.
      const double on_rate = config_.rate * config_.burst_factor;
      const double mean_off =
          config_.mean_on_seconds * (config_.burst_factor - 1.0);
      for (;;) {
        if (!on_) {
          now_ = phase_end_;
          on_ = true;
          phase_end_ = now_ + ExpGap(1.0 / config_.mean_on_seconds);
          continue;
        }
        const double gap = ExpGap(on_rate);
        if (now_ + gap <= phase_end_) {
          now_ += gap;
          return now_;
        }
        now_ = phase_end_;
        on_ = false;
        phase_end_ = now_ + ExpGap(1.0 / mean_off);
      }
    }
  }
  return now_;
}

}  // namespace gpujoin::serve
