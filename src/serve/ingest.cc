#include "serve/ingest.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/check.h"

namespace gpujoin::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Synthetic payload tag: keeps ingest values disjoint from base column
// positions (which are < 2^40 for any modeled relation) while staying
// clear of the delta's tombstone bit.
constexpr uint64_t kValueTag = uint64_t{1} << 40;
}  // namespace

Result<std::unique_ptr<IngestCoordinator>> IngestCoordinator::Create(
    const Config& config, mem::AddressSpace* space,
    const workload::KeyColumn* base, const sim::CostModel* cost,
    int num_shards, OwnerFn owner) {
  if (num_shards <= 0) {
    return Status::InvalidArgument("ingest needs at least one shard");
  }
  if (config.ops.rate < 0 || !std::isfinite(config.ops.rate)) {
    return Status::InvalidArgument(
        "ingest rate must be finite and >= 0 (0 disables ingest)");
  }
  if (config.insert_fraction < 0 || config.update_fraction < 0 ||
      config.insert_fraction + config.update_fraction > 1) {
    return Status::InvalidArgument(
        "ingest op fractions must be nonnegative with insert + update <= 1");
  }
  if (config.merge_threshold == 0) {
    return Status::InvalidArgument("merge_threshold must be positive");
  }
  if (base->size() == 0) {
    return Status::InvalidArgument("ingest needs a non-empty base column");
  }

  std::vector<ShardState> shards;
  shards.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    auto hybrid = index::HybridIndex::Create(space, base, config.hybrid);
    if (!hybrid.ok()) return hybrid.status();
    ShardState st;
    st.hybrid = std::move(hybrid).value();
    st.oldest_active = kInf;
    st.oldest_frozen = kInf;
    shards.push_back(std::move(st));
  }
  return std::unique_ptr<IngestCoordinator>(new IngestCoordinator(
      config, cost, std::move(owner), std::move(shards),
      base->max_key() + 1, base->size()));
}

IngestCoordinator::IngestCoordinator(const Config& config,
                                     const sim::CostModel* cost,
                                     OwnerFn owner,
                                     std::vector<ShardState> shards,
                                     Key first_fresh_key,
                                     uint64_t base_size)
    : config_(config),
      cost_(cost),
      owner_(std::move(owner)),
      shards_(std::move(shards)),
      gen_(config.ops),
      rng_(SplitMix64(config.seed ^ 0x146E57)),
      next_fresh_key_(first_fresh_key),
      base_size_(base_size) {
  if (active()) GenerateNextOp();
}

void IngestCoordinator::GenerateNextOp() {
  Op op;
  op.at_seconds = gen_.Next();
  const double draw = rng_.NextDouble();
  if (draw < config_.insert_fraction) {
    op.kind = Op::Kind::kInsert;
    // Appends: fresh keys grow past the base's tail, the common
    // time-ordered primary-key pattern. This skews insert load to the
    // tail key range's owner, which is exactly the hot-shard behaviour
    // an append-heavy HTAP mix produces.
    op.key = next_fresh_key_++;
  } else if (draw < config_.insert_fraction + config_.update_fraction) {
    op.kind = Op::Kind::kUpdate;
    op.key = static_cast<Key>(rng_.NextBounded(base_size_));  // position
  } else {
    op.kind = Op::Kind::kDelete;
    op.key = static_cast<Key>(rng_.NextBounded(base_size_));  // position
  }
  op.value = kValueTag + value_seq_++;
  op.shard = -1;  // resolved (and position mapped to key) in ApplyOp
  next_op_ = op;
  next_op_valid_ = true;
}

void IngestCoordinator::StartMerge(int shard, double at_seconds) {
  ShardState& st = shards_[shard];
  GPUJOIN_CHECK(st.merge_end < 0) << "merge already in flight";
  const index::HybridIndex::MergeWork work = st.hybrid->BeginMerge();
  const double duration =
      cost_->HostStreamSeconds(work.read_bytes, work.write_bytes);
  st.merge_end = at_seconds + duration;
  st.oldest_frozen = st.oldest_active;
  st.oldest_active = kInf;
  ++stats_.merges_started;
  stats_.merge_seconds += duration;
}

double IngestCoordinator::CompleteMerge(int shard) {
  ShardState& st = shards_[shard];
  st.hybrid->CompleteMerge();
  st.merge_end = -1;
  st.oldest_frozen = kInf;
  ++stats_.merges;
  ++stats_.swap_stalls;
  // The epoch swap is one stream-sync on the serving device: the shard's
  // readers drain, the overlay pointer flips, readers resume. Shards
  // swap independently, so the fleet never stalls together.
  const double stall = cost_->platform().gpu.stream_sync_overhead;
  stats_.swap_stall_seconds += stall;
  stats_.epochs = std::max(stats_.epochs, st.hybrid->epoch());
  return stall;
}

void IngestCoordinator::SampleFootprint() {
  uint64_t entries = 0;
  uint64_t bytes = 0;
  for (const ShardState& st : shards_) {
    entries += st.hybrid->delta_entries();
    bytes += st.hybrid->delta_bytes();
  }
  stats_.delta_entries = entries;
  stats_.delta_bytes = bytes;
  stats_.delta_entries_peak = std::max(stats_.delta_entries_peak, entries);
  stats_.delta_bytes_peak = std::max(stats_.delta_bytes_peak, bytes);
}

void IngestCoordinator::ApplyOp(const Op& op) {
  Op resolved = op;
  if (resolved.kind != Op::Kind::kInsert) {
    // Update/delete ops carry a base *position* until application; map
    // it to the key here (ApplyOp is the only consumer).
    resolved.key = shards_[0].hybrid->base().key_at(
        static_cast<uint64_t>(resolved.key));
  }
  resolved.shard = owner_(resolved.key);
  ShardState& st = shards_[resolved.shard];

  auto apply = [&]() -> Status {
    switch (resolved.kind) {
      case Op::Kind::kInsert:
      case Op::Kind::kUpdate:
        return st.hybrid->Upsert(resolved.key, resolved.value);
      case Op::Kind::kDelete:
        return st.hybrid->Remove(resolved.key);
    }
    return Status::Internal("unreachable");
  };

  Status s = apply();
  if (s.code() == StatusCode::kResourceExhausted) {
    // Full active delta: if no merge is draining this shard yet, start
    // an emergency one (frees the active tree via the role swap) and
    // retry; otherwise shed the op. Either way the server keeps running
    // — this is the path that used to CHECK-abort.
    if (st.merge_end < 0) {
      StartMerge(resolved.shard, resolved.at_seconds);
      s = apply();
    }
    if (s.code() == StatusCode::kResourceExhausted) {
      ++stats_.ops_shed;
      return;
    }
  }
  GPUJOIN_CHECK(s.ok()) << s.ToString();

  st.oldest_active = std::min(st.oldest_active, resolved.at_seconds);
  ++stats_.ops_applied;
  switch (resolved.kind) {
    case Op::Kind::kInsert: ++stats_.inserts; break;
    case Op::Kind::kUpdate: ++stats_.updates; break;
    case Op::Kind::kDelete: ++stats_.deletes; break;
  }
  if (config_.record_log) log_.push_back(resolved);
  SampleFootprint();

  if (st.merge_end < 0 &&
      st.hybrid->active().entries() >= config_.merge_threshold) {
    StartMerge(resolved.shard, resolved.at_seconds);
  }
}

double IngestCoordinator::AdvanceTo(double now) {
  if (!active()) return 0;
  double stall = 0;
  for (;;) {
    // Next event: the earliest merge completion or the next op, in
    // chronological order (ties: merge first — its work was already
    // under way when the op arrived).
    int merge_shard = -1;
    double merge_t = kInf;
    for (int i = 0; i < num_shards(); ++i) {
      if (shards_[i].merge_end >= 0 && shards_[i].merge_end < merge_t) {
        merge_t = shards_[i].merge_end;
        merge_shard = i;
      }
    }
    const bool op_due = next_op_valid_ && next_op_.at_seconds <= now;
    if (merge_shard >= 0 && merge_t <= now &&
        (!op_due || merge_t <= next_op_.at_seconds)) {
      stall += CompleteMerge(merge_shard);
      continue;
    }
    if (op_due) {
      const Op op = next_op_;
      GenerateNextOp();
      ApplyOp(op);
      continue;
    }
    break;
  }
  return stall;
}

double IngestCoordinator::LookupSurchargeSeconds(uint64_t tuples) const {
  if (!active() || tuples == 0) return 0;
  uint32_t depth = 0;
  for (const ShardState& st : shards_) {
    depth = std::max(depth, st.hybrid->probe_depth_lines());
  }
  if (depth == 0) return 0;
  // Shards probe their slices in parallel; the batch pays the widest
  // shard's consult depth over its share of the tuples.
  const uint64_t per_shard =
      (tuples + static_cast<uint64_t>(num_shards()) - 1) /
      static_cast<uint64_t>(num_shards());
  return cost_->HostLookupSeconds(per_shard, depth);
}

void IngestCoordinator::RecordBatchStaleness(double now) {
  if (!active()) return;
  double oldest = kInf;
  for (const ShardState& st : shards_) {
    oldest = std::min(oldest, std::min(st.oldest_active, st.oldest_frozen));
  }
  stats_.staleness.Record(oldest == kInf ? 0 : std::max(0.0, now - oldest));
}

void IngestCoordinator::Finish(double end_seconds) {
  if (!active()) return;
  AdvanceTo(end_seconds);
  SampleFootprint();
  uint64_t overlay = 0;
  for (const ShardState& st : shards_) {
    overlay += st.hybrid->overlay_entries();
  }
  stats_.overlay_entries = overlay;
}

std::optional<uint64_t> IngestCoordinator::Find(Key key) const {
  return shards_[static_cast<size_t>(owner_(key))].hybrid->Find(key);
}

}  // namespace gpujoin::serve
