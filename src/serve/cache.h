#ifndef GPUJOIN_SERVE_CACHE_H_
#define GPUJOIN_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "core/match.h"
#include "mem/address_space.h"
#include "obs/tenant.h"
#include "sim/cost_model.h"
#include "sim/gpu.h"
#include "util/status.h"

namespace gpujoin::serve {

// Knobs of the hot-key result cache. The cache memoizes the join result
// (the match set) of one request key's probe slice; the Zipf-1.75 skew
// of the paper's Fig. 8 concentrates probes on a few keys, so a small
// reservation absorbs most of the offered load.
struct ResultCacheConfig {
  // Host bytes reserved for memoized results, charged against the
  // simulated address space via sim::MemoryModel::TryReserve. 0 disables
  // the cache.
  uint64_t reserved_bytes = 0;

  // Deterministic eviction policy: strict LRU (recency list) or the
  // clock/second-chance approximation (one reference bit, a sweeping
  // hand). Both evict the same entries for the same operation sequence
  // every run.
  enum class Eviction : uint8_t { kLru, kClock };
  Eviction eviction = Eviction::kLru;

  // Dependent cachelines of the directory probe charged per lookup and
  // per install (sim::CostModel::CacheServeSeconds).
  uint32_t probe_depth_lines = 2;

  // Fixed per-entry bookkeeping bytes on top of the memoized matches.
  uint64_t entry_overhead_bytes = 64;

  bool enabled() const { return reserved_bytes > 0; }

  // InvalidArgument naming the offending field (zero probe depth, or a
  // reservation too small to ever hold one overhead-only entry).
  Status Validate() const;
};

// Deterministic memoization of per-key join results in front of a
// serve::WindowBackend. Single-threaded like the serving event loop it
// runs in: a fixed config and operation sequence reproduce hits, misses
// and evictions bit for bit at any sweep --threads value. Hits are
// charged through sim::CostModel (directory probe + streaming the
// memoized bytes), installs likewise, and the reservation itself goes
// through sim::MemoryModel — hit-rate vs reserved bytes is a modeled
// tradeoff, not a free win.
class ResultCache {
 public:
  static Result<std::unique_ptr<ResultCache>> Create(
      const ResultCacheConfig& config, sim::Gpu& gpu);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Looks up `key`. On a hit: appends the memoized matches to *replay
  // (when non-null), adds the simulated hit charge to *service_seconds,
  // refreshes recency, and returns true. On a miss returns false and
  // charges nothing (the directory probe of the subsequent Insert covers
  // the miss path).
  bool Lookup(uint64_t key, std::vector<core::JoinMatch>* replay,
              double* service_seconds);

  // Installs the memoized result for `key`, evicting deterministically
  // (LRU tail / clock hand) until it fits; an entry larger than the
  // whole reservation is skipped and counted. Adds the simulated install
  // charge to *service_seconds. A key already present is refreshed, not
  // duplicated.
  void Insert(uint64_t key, std::vector<core::JoinMatch> matches,
              double* service_seconds);

  uint64_t entries() const { return map_.size(); }
  uint64_t used_bytes() const { return used_bytes_; }
  const obs::CacheStats& stats() const { return stats_; }

  // Snapshot including the end-of-run residency fields.
  obs::CacheStats FinalStats() const;

 private:
  struct Entry {
    uint64_t key = 0;
    uint64_t bytes = 0;
    bool referenced = false;  // clock reference bit
    std::vector<core::JoinMatch> matches;
  };

  ResultCache(const ResultCacheConfig& config, const sim::CostModel* cost,
              mem::Region region)
      : config_(config), cost_(cost), region_(region) {
    stats_.reserved_bytes = config.reserved_bytes;
  }

  uint64_t EntryBytes(const std::vector<core::JoinMatch>& matches) const {
    return config_.entry_overhead_bytes +
           matches.size() * sizeof(core::JoinMatch);
  }

  void EvictOne();

  ResultCacheConfig config_;
  const sim::CostModel* cost_;
  mem::Region region_;  // the simulated reservation backing the cache

  // Recency list: front = most recent (LRU mode). Clock mode keeps
  // insertion order and sweeps hand_ instead.
  std::list<Entry> entries_;
  std::map<uint64_t, std::list<Entry>::iterator> map_;
  std::list<Entry>::iterator hand_ = entries_.end();
  uint64_t used_bytes_ = 0;
  obs::CacheStats stats_;
};

}  // namespace gpujoin::serve

#endif  // GPUJOIN_SERVE_CACHE_H_
