#include "serve/cache.h"

#include <utility>

namespace gpujoin::serve {

Status ResultCacheConfig::Validate() const {
  if (!enabled()) return Status();
  if (probe_depth_lines == 0) {
    return Status::InvalidArgument(
        "cache.probe_depth_lines must be positive when the cache is "
        "enabled");
  }
  if (reserved_bytes < entry_overhead_bytes) {
    return Status::InvalidArgument(
        "cache.reserved_bytes must hold at least one entry's overhead "
        "(cache.entry_overhead_bytes)");
  }
  return Status();
}

Result<std::unique_ptr<ResultCache>> ResultCache::Create(
    const ResultCacheConfig& config, sim::Gpu& gpu) {
  Status st = config.Validate();
  if (!st.ok()) return st;
  if (!config.enabled()) {
    return Status::InvalidArgument(
        "cache.reserved_bytes must be positive to create a ResultCache");
  }
  auto region = gpu.memory().TryReserve(config.reserved_bytes,
                                        mem::MemKind::kHost, "result_cache");
  if (!region.ok()) return region.status();
  return std::unique_ptr<ResultCache>(
      new ResultCache(config, &gpu.cost_model(), region.value()));
}

bool ResultCache::Lookup(uint64_t key, std::vector<core::JoinMatch>* replay,
                         double* service_seconds) {
  ++stats_.lookups;
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  Entry& entry = *it->second;
  if (replay != nullptr) {
    replay->insert(replay->end(), entry.matches.begin(), entry.matches.end());
  }
  const double charge = cost_->CacheServeSeconds(
      entry.matches.size() * sizeof(core::JoinMatch),
      config_.probe_depth_lines);
  stats_.hit_seconds += charge;
  if (service_seconds != nullptr) *service_seconds += charge;
  if (config_.eviction == ResultCacheConfig::Eviction::kLru) {
    // Refresh recency: move to the front. Splicing the hand's node would
    // leave hand_ pointing into the reordered list, but LRU mode never
    // uses hand_, so keep it parked at end().
    entries_.splice(entries_.begin(), entries_, it->second);
  } else {
    entry.referenced = true;
  }
  return true;
}

void ResultCache::Insert(uint64_t key, std::vector<core::JoinMatch> matches,
                         double* service_seconds) {
  const uint64_t bytes = EntryBytes(matches);
  const double charge = cost_->CacheInstallSeconds(
      matches.size() * sizeof(core::JoinMatch), config_.probe_depth_lines);
  stats_.insert_seconds += charge;
  if (service_seconds != nullptr) *service_seconds += charge;
  if (bytes > config_.reserved_bytes) {
    ++stats_.skipped_too_large;
    return;
  }
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh in place: swap the payload, adjust residency. The entry
    // keeps its list position (recency already updated by the Lookup that
    // preceded this Insert on the miss path; a direct re-Insert of a
    // resident key is a refresh, not a promotion).
    Entry& entry = *it->second;
    used_bytes_ -= entry.bytes;
    entry.matches = std::move(matches);
    entry.bytes = bytes;
    used_bytes_ += bytes;
    while (used_bytes_ > config_.reserved_bytes) EvictOne();
    return;
  }
  while (used_bytes_ + bytes > config_.reserved_bytes) EvictOne();
  Entry entry;
  entry.key = key;
  entry.bytes = bytes;
  entry.matches = std::move(matches);
  if (config_.eviction == ResultCacheConfig::Eviction::kLru) {
    entries_.push_front(std::move(entry));
    map_.emplace(key, entries_.begin());
  } else {
    // Clock keeps a circular insertion-order list; new entries join just
    // before the hand (i.e. at the end of the sweep order) with their
    // reference bit clear, the classic second-chance placement.
    auto pos = entries_.insert(
        hand_ == entries_.end() ? entries_.end() : hand_, std::move(entry));
    map_.emplace(key, pos);
    if (hand_ == entries_.end()) hand_ = pos;
  }
  used_bytes_ += bytes;
  ++stats_.insertions;
}

void ResultCache::EvictOne() {
  if (entries_.empty()) return;
  if (config_.eviction == ResultCacheConfig::Eviction::kLru) {
    Entry& victim = entries_.back();
    used_bytes_ -= victim.bytes;
    map_.erase(victim.key);
    entries_.pop_back();
    ++stats_.evictions;
    return;
  }
  // Clock: sweep from the hand, clearing reference bits, and evict the
  // first unreferenced entry. Bounded: one full revolution clears every
  // bit, so the second visit of any entry evicts it.
  if (hand_ == entries_.end()) hand_ = entries_.begin();
  while (true) {
    if (hand_->referenced) {
      hand_->referenced = false;
      ++hand_;
      if (hand_ == entries_.end()) hand_ = entries_.begin();
      continue;
    }
    auto victim = hand_;
    ++hand_;
    used_bytes_ -= victim->bytes;
    map_.erase(victim->key);
    entries_.erase(victim);
    if (hand_ == entries_.end()) hand_ = entries_.begin();
    if (entries_.empty()) hand_ = entries_.end();
    ++stats_.evictions;
    return;
  }
}

obs::CacheStats ResultCache::FinalStats() const {
  obs::CacheStats out = stats_;
  out.entries = map_.size();
  out.used_bytes = used_bytes_;
  return out;
}

}  // namespace gpujoin::serve
