#ifndef GPUJOIN_SERVE_BATCHER_H_
#define GPUJOIN_SERVE_BATCHER_H_

#include <cstdint>

#include "util/status.h"

namespace gpujoin::serve {

// When a micro-batch closes and hands its requests to the windowed join:
// whichever fires first of a size trigger (pending tuples reach the
// current batch size) and a deadline trigger (the oldest pending request
// has waited `deadline_seconds`). In adaptive mode the batch size doubles
// and halves with observed queue depth, confined to the paper's 4–52 MiB
// window sweet spot (Sec. 5.2.2) expressed in 8-byte probe tuples.
struct BatchPolicy {
  // Initial (and, when !adaptive, fixed) batch size in probe tuples.
  uint64_t batch_tuples = uint64_t{1} << 19;  // 4 MiB of keys
  // Upper bound on how long a request may wait for its batch to close.
  double deadline_seconds = 1e-3;
  bool adaptive = true;
  uint64_t min_batch_tuples = uint64_t{1} << 19;  // 4 MiB
  uint64_t max_batch_tuples = (uint64_t{52} << 20) / 8;  // 52 MiB

  // InvalidArgument naming the offending field when a knob is malformed:
  // an inverted [min, max] band, a zero size, or a non-positive /
  // non-finite deadline (which would silently disable the deadline
  // trigger and let partial batches wait forever). Called by
  // serve::RequestServer before the batcher is built; same idiom as
  // RetryPolicy::Validate and sim::DeviceFaultConfig::Validate.
  Status Validate() const;
};

// The batching policy, kept separate from the event loop so the
// grow/shrink behaviour is directly testable. Pure decision logic: the
// server owns the queue and the clock.
class MicroBatcher {
 public:
  explicit MicroBatcher(const BatchPolicy& policy);

  uint64_t batch_tuples() const { return batch_tuples_; }
  const BatchPolicy& policy() const { return policy_; }

  // Size trigger: does `pending_tuples` fill the current batch?
  bool SizeTriggered(uint64_t pending_tuples) const {
    return pending_tuples >= batch_tuples_;
  }

  // Deadline trigger: the absolute time at which a batch whose oldest
  // request arrived at `oldest_arrival` must close.
  double DeadlineFor(double oldest_arrival) const {
    return oldest_arrival + policy_.deadline_seconds;
  }

  // Adapts the batch size to the queue depth observed right after a
  // batch closed: a backlog over twice the batch doubles it (amortize
  // per-window launch overhead), a backlog under a quarter halves it
  // (stop trading latency for throughput nobody needs). No-op when
  // !adaptive.
  void ObserveBacklog(uint64_t backlog_tuples);

  uint64_t grows() const { return grows_; }
  uint64_t shrinks() const { return shrinks_; }

 private:
  BatchPolicy policy_;
  uint64_t batch_tuples_;
  uint64_t grows_ = 0;
  uint64_t shrinks_ = 0;
};

}  // namespace gpujoin::serve

#endif  // GPUJOIN_SERVE_BATCHER_H_
