#ifndef GPUJOIN_SERVE_TENANT_H_
#define GPUJOIN_SERVE_TENANT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "obs/tenant.h"
#include "util/rng.h"
#include "util/status.h"
#include "workload/zipf.h"

namespace gpujoin::serve {

// One service tier: a weight for the deficit-weighted-fair scheduler and
// a token-bucket rate limit. Tenants map onto tiers round-robin
// (tenant t -> tiers[t % tiers.size()]), so a three-tier config spreads
// thousands of tenants gold/silver/bronze.
struct TenantTier {
  std::string name;

  // Deficit-round-robin weight: a tier with weight 2 drains twice the
  // tuples per scheduling round of a weight-1 tier when both are backlogged.
  double weight = 1.0;

  // Token-bucket refill rate per tenant of this tier, in request tuples
  // per simulated second. 0 disables rate limiting for the tier.
  double rate_tuples_per_sec = 0;

  // Bucket capacity in tuples. 0 defaults to one second of refill (or one
  // request's tuples if larger), the usual burst allowance.
  uint64_t burst_tuples = 0;
};

// Which queueing discipline feeds the micro-batcher.
enum class TenantScheduler : uint8_t {
  // One global arrival-order queue; a flooding tenant inflates everyone's
  // latency (the baseline the bench degrades on purpose).
  kFifo,
  // Per-tenant queues drained by deficit round robin with weight-scaled
  // quanta; a flooding tenant only eats its own queue.
  kDeficitWeightedFair,
};

// Multi-tenant serving knobs. Default num_tenants == 0 keeps the server
// in its original single-tenant mode with bit-identical output.
struct TenantConfig {
  // Number of tenants; 0 disables tenant mode entirely.
  uint64_t num_tenants = 0;

  // Service tiers (must be non-empty in tenant mode; names unique).
  std::vector<TenantTier> tiers;

  // Popularity skew of the tenant draw (Zipf exponent; 0 = uniform).
  // Request attribution is heavy-tailed like real serving fleets: a few
  // tenants dominate traffic.
  double tenant_zipf = 1.75;

  TenantScheduler scheduler = TenantScheduler::kDeficitWeightedFair;

  // Misbehaving-tenant model: the flood adds `rogue_extra` times the
  // configured arrival rate as additional traffic, all attributed to
  // `rogue_tenant`. The well-behaved tenants' offered load is unchanged,
  // which is what makes the p99-isolation comparison meaningful.
  double rogue_extra = 0;
  uint64_t rogue_tenant = 0;

  // Hot-key request model: each request probes the slice of `tuples_per
  // request` probe-sample rows selected by a key drawn Zipf(key_zipf)
  // from [0, key_universe). 0 keeps the legacy cyclic-cursor slicing
  // (and disables the result cache, which needs keyed requests).
  uint64_t key_universe = 0;
  double key_zipf = 1.75;

  // Seed of the tenant/key/rogue draws, independent of the arrival
  // process RNG so enabling tenancy does not perturb arrival times.
  uint64_t seed = 0x7e4a9c0ffee ^ 0x5eed;

  bool enabled() const { return num_tenants > 0; }

  // InvalidArgument naming the offending field: empty or duplicate tier
  // names, non-positive/non-finite weight, negative rate or skew, rogue
  // tenant out of range.
  Status Validate() const;
};

// Draws request attribution, enforces per-tenant token buckets, and
// queues admitted requests for the scheduler. Owned by the RequestServer
// event loop; single-threaded and deterministic for a fixed config.
class TenantRouter {
 public:
  // Validates `config` (plus tuples_per_request > 0) and builds the
  // samplers, buckets and queues.
  static Result<std::unique_ptr<TenantRouter>> Create(
      const TenantConfig& config, uint64_t tuples_per_request);

  TenantRouter(const TenantRouter&) = delete;
  TenantRouter& operator=(const TenantRouter&) = delete;

  struct Draw {
    uint32_t tenant = 0;
    uint32_t tier = 0;
    uint64_t key = 0;   // meaningful only when config.key_universe > 0
    bool rogue = false; // attributed to the flood, not organic traffic
  };

  // Attributes one arrival: rogue coin, tenant rank (Zipf), key (Zipf).
  // Consumes RNG draws in a fixed order regardless of outcomes.
  Draw NextArrival();

  // Token-bucket admission of `tuples` for `tenant` at simulated time
  // `now`. Returns false (and counts the shed) when the bucket is dry.
  bool Admit(const Draw& draw, double now, uint64_t tuples);

  // Enqueues admitted request `request_id` for scheduling.
  void Enqueue(const Draw& draw, uint64_t request_id);

  // Dequeues up to `budget_tuples` worth of requests into *out in
  // scheduling order: global FIFO, or deficit-weighted round robin over
  // the active per-tenant queues. Always makes progress when non-empty
  // (at least one request), even if its tuples exceed the budget.
  void PopBatch(uint64_t budget_tuples, std::vector<uint64_t>* out);

  bool queue_empty() const { return queued_requests_ == 0; }
  uint64_t queued_requests() const { return queued_requests_; }

  // Per-tier accounting (indexes parallel config.tiers).
  void CountArrival(const Draw& draw);
  void CountBacklogShed(const Draw& draw);
  void CountServed(const Draw& draw, double latency_seconds);

  // Fills scheduler/tiers/tenant fields of *stats (not the cache section).
  void FillStats(obs::TenantStats* stats) const;

  const TenantConfig& config() const { return config_; }
  uint32_t TierOf(uint64_t tenant) const {
    return static_cast<uint32_t>(tenant % config_.tiers.size());
  }

 private:
  struct Bucket {
    double level = 0;
    double last_refill = 0;
  };

  struct TenantQueue {
    std::deque<uint64_t> requests;  // request ids, arrival order
    std::deque<uint64_t> tuples;    // parallel: tuples of each request
    double deficit = 0;
    bool active = false;  // present in active_ round-robin ring
  };

  TenantRouter(const TenantConfig& config, uint64_t tuples_per_request);

  TenantConfig config_;
  uint64_t tuples_per_request_;
  Xoshiro256 rng_;
  workload::ZipfSampler tenant_sampler_;
  workload::ZipfSampler key_sampler_;
  double rogue_probability_ = 0;  // rogue_extra / (1 + rogue_extra)

  std::vector<Bucket> buckets_;        // per tenant
  std::vector<uint64_t> tenant_seen_;  // per tenant: organic requests seen
  std::vector<TenantQueue> queues_;    // per tenant (fair mode)
  std::deque<uint32_t> active_;        // round-robin ring of active tenants
  std::deque<uint64_t> fifo_;          // global queue (fifo mode)
  std::deque<uint64_t> fifo_tuples_;
  uint64_t queued_requests_ = 0;

  std::vector<obs::TenantTierStats> tier_stats_;
  uint64_t rogue_requests_ = 0;
};

}  // namespace gpujoin::serve

#endif  // GPUJOIN_SERVE_TENANT_H_
