#include "join/cpu_reference.h"

namespace gpujoin::join {

std::vector<ReferenceMatch> CpuReferenceJoin(
    const workload::KeyColumn& column,
    const std::vector<workload::Key>& probe_keys) {
  std::vector<ReferenceMatch> matches;
  matches.reserve(probe_keys.size());
  const uint64_t n = column.size();
  for (uint64_t row = 0; row < probe_keys.size(); ++row) {
    const uint64_t pos = column.LowerBound(probe_keys[row]);
    if (pos < n && column.key_at(pos) == probe_keys[row]) {
      matches.push_back({row, pos});
    }
  }
  return matches;
}

uint64_t CpuReferenceJoinCount(
    const workload::KeyColumn& column,
    const std::vector<workload::Key>& probe_keys) {
  uint64_t count = 0;
  const uint64_t n = column.size();
  for (const workload::Key key : probe_keys) {
    const uint64_t pos = column.LowerBound(key);
    if (pos < n && column.key_at(pos) == key) ++count;
  }
  return count;
}

}  // namespace gpujoin::join
