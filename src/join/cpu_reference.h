#ifndef GPUJOIN_JOIN_CPU_REFERENCE_H_
#define GPUJOIN_JOIN_CPU_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "workload/key_column.h"

namespace gpujoin::join {

// A single-threaded CPU join used as a correctness oracle in tests and
// examples: joins probe keys against a sorted column by galloping /
// binary search and returns exact (probe_row, column_position) matches.
// No hardware accounting — this is ground truth, not a contender.
struct ReferenceMatch {
  uint64_t probe_row;
  uint64_t position;
};

// Equi-join of `probe_keys` against the sorted unique `column`.
std::vector<ReferenceMatch> CpuReferenceJoin(
    const workload::KeyColumn& column,
    const std::vector<workload::Key>& probe_keys);

// Convenience: just the match count.
uint64_t CpuReferenceJoinCount(const workload::KeyColumn& column,
                               const std::vector<workload::Key>& probe_keys);

}  // namespace gpujoin::join

#endif  // GPUJOIN_JOIN_CPU_REFERENCE_H_
