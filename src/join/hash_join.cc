#include "join/hash_join.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "sim/phase.h"
#include "util/check.h"
#include "util/units.h"

namespace gpujoin::join {

Result<sim::RunResult> HashJoin::Run(sim::Gpu& gpu,
                                     const workload::KeyColumn& r,
                                     const workload::ProbeRelation& s,
                                     const HashJoinConfig& config) {
  mem::AddressSpace& space = gpu.memory().space();
  const double build_scale = s.scale();
  const uint64_t n_r = r.size();
  const uint64_t probe_sample = std::min(config.probe_sample, n_r);
  const double probe_scale =
      static_cast<double>(n_r) / static_cast<double>(probe_sample);

  // Full-size table in simulated GPU memory (sparse functional storage).
  MultiValueHashTable table(&space, s.full_size, s.full_size, config.table);
  if (table.footprint_bytes() > gpu.platform().gpu.hbm_capacity) {
    return Status::ResourceExhausted(
        "hash table (" +
        FormatBytes(static_cast<double>(table.footprint_bytes())) +
        ") exceeds GPU memory (" +
        FormatBytes(static_cast<double>(gpu.platform().gpu.hbm_capacity)) +
        ")");
  }
  // The table is allocated up front before any tuple flows; an injected
  // allocation failure fails the whole join. The baseline has no smaller
  // working set to fall back to (unlike the windowed INLJ, which shrinks
  // its window) — by design it is fail-stop, which is exactly the
  // contrast the fault-recovery ablation measures.
  Status alloc = gpu.memory().FaultCheckDeviceAlloc(table.footprint_bytes(),
                                                    "hash_join.table");
  if (!alloc.ok()) return alloc;

  // --- Build: insert the (sampled) S tuples, streaming keys from CPU
  // memory.
  sim::KernelRun build =
      gpu.RunKernel("hj_build", s.sample_size(), [&](sim::Warp& warp) {
        sim::PhaseScope phase(warp.memory().phase_sink(), "hj.build");
        const uint64_t base = warp.base_item();
        const int count = warp.lane_count();
        warp.memory().Stream(s.keys.addr_of(base), count * sizeof(Key),
                             sim::AccessType::kRead);
        std::array<Key, sim::Warp::kWidth> keys{};
        std::array<uint64_t, sim::Warp::kWidth> values{};
        for (int lane = 0; lane < count; ++lane) {
          keys[lane] = s.keys[base + lane];
          values[lane] = base + lane;  // S row id
        }
        warp.AddSteps(4);  // hashing etc.
        table.InsertWarp(warp, keys.data(), values.data(), warp.full_mask());
      });

  Status build_status = gpu.memory().fault_status();
  if (!build_status.ok()) return build_status;

  // The sampled duplicate-chain walks scale quadratically, not linearly:
  // replace them with a full-scale analytic estimate (see
  // MultiValueHashTable docs; this models the Fig. 8 degradation).
  const uint64_t sampled_walk_hbm =
      table.total_walk_hops() * gpu.memory().line_bytes();
  build.counters.serial_dependent_loads = 0;
  build.counters.hbm_read_bytes -=
      std::min(build.counters.hbm_read_bytes, sampled_walk_hbm);
  build.counters = build.counters.Scaled(build_scale);

  double walk_hops_total = 0;
  double walk_hops_critical = 0;
  const double bs = static_cast<double>(table.max_bucket_size());
  table.ForEachKeyCount([&](Key, uint64_t count) {
    const double c_full = static_cast<double>(count) * build_scale;
    if (c_full <= bs) return;  // never leaves its first block
    const double hops = c_full * c_full / (2.0 * bs);
    walk_hops_total += hops;
    walk_hops_critical = std::max(walk_hops_critical, hops);
  });
  build.counters.serial_dependent_loads +=
      static_cast<uint64_t>(walk_hops_critical);
  build.counters.hbm_read_bytes += static_cast<uint64_t>(
      walk_hops_total * gpu.memory().line_bytes());

  // --- Probe: scan R across the interconnect and probe the table.
  uint64_t sample_matches = 0;
  sim::KernelRun probe =
      gpu.RunKernel("hj_probe", probe_sample, [&](sim::Warp& warp) {
        sim::PhaseScope phase(warp.memory().phase_sink(), "hj.probe");
        const uint64_t base = warp.base_item();
        const int count = warp.lane_count();
        warp.memory().Stream(r.addr_of(base), count * sizeof(Key),
                             sim::AccessType::kRead);
        std::array<Key, sim::Warp::kWidth> keys{};
        for (int lane = 0; lane < count; ++lane) {
          keys[lane] = r.key_at(base + lane);
        }
        warp.AddSteps(4);
        table.RetrieveWarp(warp, keys.data(), warp.full_mask(),
                           [&](int, uint64_t) { ++sample_matches; });
      });
  Status probe_status = gpu.memory().fault_status();
  if (!probe_status.ok()) return probe_status;
  probe.counters = probe.counters.Scaled(probe_scale);

  // --- Materialize: every S tuple joins exactly one R tuple, so the
  // result is |S| pairs written to GPU memory (overlapped with the probe).
  probe.counters.hbm_write_bytes += s.full_size * 16;

  sim::RunResult result;
  result.label = "hash_join";
  result.probe_tuples = n_r;
  result.result_tuples = s.full_size;
  const double t_build = gpu.TimeOf(build);
  const double t_probe = gpu.TimeOf(probe);
  result.seconds = t_build + t_probe;
  result.counters = build.counters;
  result.counters += probe.counters;
  result.AddStage("build", t_build);
  result.AddStage("probe", t_probe);
  return result;
}

}  // namespace gpujoin::join
