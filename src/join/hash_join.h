#ifndef GPUJOIN_JOIN_HASH_JOIN_H_
#define GPUJOIN_JOIN_HASH_JOIN_H_

#include "join/multi_value_hash_table.h"
#include "sim/gpu.h"
#include "sim/run_result.h"
#include "util/status.h"
#include "workload/relation.h"

namespace gpujoin::join {

// Configuration of the paper's hash-join baseline (Sec. 3.2).
struct HashJoinConfig {
  MultiValueHashTable::Options table;
  // Number of R tuples whose scan+probe is simulated; counters are
  // extrapolated to |R| (the scan is perfectly regular, so a contiguous
  // sample is representative).
  uint64_t probe_sample = uint64_t{1} << 20;
};

// No-partitioning GPU hash join: builds a WarpCore-style multi-value hash
// table on the smaller relation S in GPU memory (on the fly — included in
// the throughput, Sec. 3.2), then probes it with a table scan of R
// streamed across the interconnect. This is the baseline every INLJ
// variant is compared against in Figs. 3, 5, 7–9.
//
// Fails with ResourceExhausted when the hash table would not fit in GPU
// memory — the constraint that caps the build side at |S| = 2^26 in the
// paper's setup.
class HashJoin {
 public:
  static Result<sim::RunResult> Run(
      sim::Gpu& gpu, const workload::KeyColumn& r,
      const workload::ProbeRelation& s,
      const HashJoinConfig& config = HashJoinConfig());
};

}  // namespace gpujoin::join

#endif  // GPUJOIN_JOIN_HASH_JOIN_H_
