#ifndef GPUJOIN_JOIN_MULTI_VALUE_HASH_TABLE_H_
#define GPUJOIN_JOIN_MULTI_VALUE_HASH_TABLE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/address_space.h"
#include "sim/gpu.h"
#include "util/rng.h"
#include "workload/key_column.h"

namespace gpujoin::join {

using workload::Key;

// A GPU-memory multi-value hash table modeled after WarpCore's
// MultiValueHashTable / bucket-list storage [23, 26], the paper's
// hash-join baseline (Sec. 3.2): open addressing with linear probing over
// 16-byte key slots; a key's first value is stored inline, further values
// go to a bucket list whose bucket capacities grow geometrically up to
// `max_bucket_size` (512 in the paper's configuration).
//
// Functional storage is sparse (hash maps keyed by slot id) while the
// simulated address layout is the full-size table, so cache and HBM
// behaviour match a real table even when only a sample of the build side
// is inserted.
//
// Appending to a key's bucket list walks to the tail bucket. Under heavy
// key duplication (the Zipf-skewed build sides of Fig. 8) those walks
// grow quadratically — the degradation that made the paper terminate the
// hash join after 10 hours. The walk statistics are exposed so the hash
// join can extrapolate the critical path analytically.
class MultiValueHashTable {
 public:
  struct Options {
    double load_factor = 0.5;        // paper Sec. 3.2
    uint32_t max_bucket_size = 512;  // paper Sec. 3.2 ("block size")
  };

  // `expected_keys` / `expected_values` size the simulated (full-scale)
  // slot array and bucket pool.
  MultiValueHashTable(mem::AddressSpace* space, uint64_t expected_keys,
                      uint64_t expected_values, const Options& options);
  MultiValueHashTable(mem::AddressSpace* space, uint64_t expected_keys,
                      uint64_t expected_values);

  // SIMT insert of (key, value) pairs for the lanes in `mask`.
  void InsertWarp(sim::Warp& warp, const Key* keys, const uint64_t* values,
                  uint32_t mask);

  // SIMT retrieve: invokes `emit(lane, value)` for every stored value of
  // each probed key. Returns the mask of lanes that found their key.
  uint32_t RetrieveWarp(
      sim::Warp& warp, const Key* keys, uint32_t mask,
      const std::function<void(int lane, uint64_t value)>& emit);

  uint64_t num_keys() const { return slots_.size(); }
  uint64_t num_values() const { return num_values_; }
  uint64_t slot_capacity() const { return capacity_; }

  // Simulated GPU-memory footprint: the slot array plus the value-storage
  // budget (actual allocation once values are inserted, the sizing
  // estimate before).
  uint64_t footprint_bytes() const {
    const uint64_t estimate = expected_values_ * 16;
    return slot_region_.size +
           (allocated_pool_bytes_ > estimate ? allocated_pool_bytes_
                                             : estimate);
  }

  // Duplicate statistics for skew extrapolation.
  uint64_t max_duplicates() const { return max_duplicates_; }
  // Total tail-walk bucket hops performed across all inserts so far.
  uint64_t total_walk_hops() const { return total_walk_hops_; }

  // Iterates (key, duplicate_count) over all stored keys; used by the
  // hash join to extrapolate full-scale duplicate-chain costs.
  void ForEachKeyCount(
      const std::function<void(Key key, uint64_t count)>& fn) const {
    for (const auto& [idx, slot] : slots_) fn(slot.key, slot.count);
  }

  uint32_t max_bucket_size() const { return max_bucket_size_; }

 private:
  static constexpr uint32_t kSlotBytes = 16;  // key + inline value / head
  static constexpr uint32_t kBucketHeaderBytes = 16;  // next + count

  struct Bucket {
    mem::VirtAddr addr;
    uint32_t capacity;
    uint32_t used;
  };

  struct Slot {
    Key key;
    std::vector<Bucket> buckets;   // list, head first
    std::vector<uint64_t> values;  // functional contents
    uint64_t count = 0;            // values stored for this key
  };

  uint64_t HashSlot(Key key) const {
    return SplitMix64(static_cast<uint64_t>(key) * 0x9ddfea08eb382d69ULL) %
           capacity_;
  }
  mem::VirtAddr SlotAddr(uint64_t slot) const {
    return slot_region_.base + slot * kSlotBytes;
  }

  // Bump-allocates a bucket of `capacity` values from the pool.
  Bucket AllocateBucket(uint32_t capacity);

  // Functional probe: returns the slot index for `key` (existing or the
  // empty slot to claim) and the number of probe steps taken.
  std::pair<uint64_t, int> ProbeSlot(Key key) const;

  uint32_t max_bucket_size_;
  uint64_t expected_values_;
  uint64_t capacity_;
  mem::Region slot_region_;
  mem::Region bucket_region_;
  uint64_t allocated_pool_bytes_ = 0;
  uint64_t num_values_ = 0;
  uint64_t max_duplicates_ = 0;
  uint64_t total_walk_hops_ = 0;
  std::unordered_map<uint64_t, Slot> slots_;  // slot index -> content
};

}  // namespace gpujoin::join

#endif  // GPUJOIN_JOIN_MULTI_VALUE_HASH_TABLE_H_
