#include "join/multi_value_hash_table.h"

#include <algorithm>
#include <array>

#include "util/bit_util.h"
#include "util/check.h"

namespace gpujoin::join {

MultiValueHashTable::MultiValueHashTable(mem::AddressSpace* space,
                                         uint64_t expected_keys,
                                         uint64_t expected_values)
    : MultiValueHashTable(space, expected_keys, expected_values, Options()) {}

MultiValueHashTable::MultiValueHashTable(mem::AddressSpace* space,
                                         uint64_t expected_keys,
                                         uint64_t expected_values,
                                         const Options& options)
    : max_bucket_size_(options.max_bucket_size),
      expected_values_(expected_values) {
  GPUJOIN_CHECK(expected_keys > 0);
  GPUJOIN_CHECK(expected_values >= expected_keys);
  GPUJOIN_CHECK(options.load_factor > 0 && options.load_factor <= 0.9);
  GPUJOIN_CHECK(max_bucket_size_ >= 2);

  capacity_ = bits::NextPowerOfTwo(static_cast<uint64_t>(
      static_cast<double>(expected_keys) / options.load_factor));
  slot_region_ = space->Reserve(capacity_ * kSlotBytes,
                                mem::MemKind::kDevice, "mvht.slots");
  // Geometric bucket growth wastes at most 2x the value bytes, plus one
  // header per bucket; reserve a generous virtual budget and CHECK
  // against it at allocation time.
  const uint64_t pool_bytes =
      expected_values * 8 * 4 + uint64_t{64} * kKiB;
  bucket_region_ =
      space->Reserve(pool_bytes, mem::MemKind::kDevice, "mvht.buckets");
}

MultiValueHashTable::Bucket MultiValueHashTable::AllocateBucket(
    uint32_t capacity) {
  const uint64_t bytes = kBucketHeaderBytes + uint64_t{capacity} * 8;
  GPUJOIN_CHECK(allocated_pool_bytes_ + bytes <= bucket_region_.size)
      << "bucket pool exhausted";
  Bucket bucket{bucket_region_.base + allocated_pool_bytes_, capacity, 0};
  allocated_pool_bytes_ += bytes;
  return bucket;
}

namespace {
uint64_t gpu_line_bytes(sim::Warp& warp) {
  return warp.memory().line_bytes();
}
}  // namespace

std::pair<uint64_t, int> MultiValueHashTable::ProbeSlot(Key key) const {
  uint64_t idx = HashSlot(key);
  int steps = 1;
  while (true) {
    auto it = slots_.find(idx);
    if (it == slots_.end() || it->second.key == key) {
      return {idx, steps};
    }
    idx = (idx + 1) & (capacity_ - 1);
    ++steps;
  }
}

void MultiValueHashTable::InsertWarp(sim::Warp& warp, const Key* keys,
                                     const uint64_t* values, uint32_t mask) {
  constexpr int kW = sim::Warp::kWidth;
  // First probe step of all lanes coalesces into one instruction; the
  // (rare) extra linear-probe steps are issued per lane.
  std::array<mem::VirtAddr, kW> addrs{};
  for (int lane = 0; lane < kW; ++lane) {
    if (mask & (1u << lane)) addrs[lane] = SlotAddr(HashSlot(keys[lane]));
  }
  warp.Gather(addrs.data(), mask, kSlotBytes);

  for (int lane = 0; lane < kW; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const Key key = keys[lane];
    auto [slot_idx, steps] = ProbeSlot(key);
    for (int s = 1; s < steps; ++s) {
      warp.memory().Access(SlotAddr((HashSlot(key) + s) & (capacity_ - 1)),
                           kSlotBytes, sim::AccessType::kRead);
    }

    Slot& slot = slots_[slot_idx];
    if (slot.count == 0) {
      // New key: claim the slot; the first value is stored inline.
      slot.key = key;
      warp.memory().Access(SlotAddr(slot_idx), kSlotBytes,
                           sim::AccessType::kWrite);
    } else {
      // Walk the bucket list to the tail (WarpCore-style append).
      const uint64_t hops = slot.buckets.size();
      if (hops > 0) {
        total_walk_hops_ += hops;
        warp.memory().SerialChain(slot.buckets.front().addr, hops,
                                  sim::AccessType::kRead);
      }
      if (slot.buckets.empty()) {
        // Second value: open the first bucket and spill the inline value.
        Bucket bucket = AllocateBucket(2);
        warp.memory().Access(bucket.addr, kBucketHeaderBytes,
                             sim::AccessType::kWrite);
        warp.memory().Access(bucket.addr + kBucketHeaderBytes, 16,
                             sim::AccessType::kWrite);
        bucket.used = 1;  // the spilled inline value
        slot.buckets.push_back(bucket);
      } else if (slot.buckets.back().used == slot.buckets.back().capacity) {
        const uint32_t next_capacity = std::min(
            max_bucket_size_, slot.buckets.back().capacity * 2);
        Bucket bucket = AllocateBucket(next_capacity);
        warp.memory().Access(bucket.addr, kBucketHeaderBytes,
                             sim::AccessType::kWrite);
        slot.buckets.push_back(bucket);
      }
      Bucket& tail = slot.buckets.back();
      warp.memory().Access(
          tail.addr + kBucketHeaderBytes + uint64_t{tail.used} * 8, 8,
          sim::AccessType::kWrite);
      ++tail.used;
    }
    slot.values.push_back(values[lane]);
    ++slot.count;
    ++num_values_;
    if (slot.count > max_duplicates_) max_duplicates_ = slot.count;
  }
}

uint32_t MultiValueHashTable::RetrieveWarp(
    sim::Warp& warp, const Key* keys, uint32_t mask,
    const std::function<void(int lane, uint64_t value)>& emit) {
  constexpr int kW = sim::Warp::kWidth;
  std::array<mem::VirtAddr, kW> addrs{};
  for (int lane = 0; lane < kW; ++lane) {
    if (mask & (1u << lane)) addrs[lane] = SlotAddr(HashSlot(keys[lane]));
  }
  warp.Gather(addrs.data(), mask, kSlotBytes);

  // WarpCore probes with cooperative groups that read a window of
  // consecutive slots per step; the window spans a second cacheline
  // (wrapping at the end of the slot array).
  for (int lane = 0; lane < kW; ++lane) {
    if (mask & (1u << lane)) {
      const uint64_t offset =
          (addrs[lane] - slot_region_.base + gpu_line_bytes(warp)) %
          slot_region_.size;
      addrs[lane] = slot_region_.base + offset;
    }
  }
  warp.Gather(addrs.data(), mask, kSlotBytes);

  uint32_t found = 0;
  for (int lane = 0; lane < kW; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const Key key = keys[lane];
    auto [slot_idx, steps] = ProbeSlot(key);
    for (int s = 1; s < steps; ++s) {
      warp.memory().Access(SlotAddr((HashSlot(key) + s) & (capacity_ - 1)),
                           kSlotBytes, sim::AccessType::kRead);
    }
    auto it = slots_.find(slot_idx);
    if (it == slots_.end()) continue;  // key absent
    const Slot& slot = it->second;
    found |= 1u << lane;

    // The inline value came with the slot read; bucket-list values cost
    // one dependent hop per bucket plus the bucket contents.
    if (!slot.buckets.empty()) {
      warp.memory().SerialChain(slot.buckets.front().addr,
                                slot.buckets.size(), sim::AccessType::kRead);
      for (const Bucket& bucket : slot.buckets) {
        warp.memory().Stream(bucket.addr + kBucketHeaderBytes,
                             uint64_t{bucket.used} * 8,
                             sim::AccessType::kRead);
      }
    }
    for (uint64_t v : slot.values) emit(lane, v);
  }
  return found;
}

}  // namespace gpujoin::join
