#ifndef GPUJOIN_MEM_PAGE_TABLE_H_
#define GPUJOIN_MEM_PAGE_TABLE_H_

#include <cstdint>

#include "mem/address_space.h"
#include "util/flat_map.h"

namespace gpujoin::mem {

// Lazily-populated page table: maps virtual page numbers to physical frame
// numbers. Frames are assigned in first-touch order, which is deterministic
// given a deterministic access sequence, so experiment runs are exactly
// reproducible.
//
// On the paper's system the translation for a host page is produced by the
// CPU's I/O memory management unit in response to a GPU address translation
// request; the simulator's TLB (sim/tlb.h) charges that cost and consults
// this table for the mapping.
class PageTable {
 public:
  explicit PageTable(const AddressSpace* space) : space_(space) {}

  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // Translates `addr` to a physical frame number, installing a mapping on
  // first touch.
  uint64_t Translate(VirtAddr addr, MemKind kind) {
    return TranslatePage(space_->PageNumber(addr, kind), kind);
  }

  // Same, for callers that already computed the virtual page number (the
  // memory model's hot path).
  uint64_t TranslatePage(uint64_t vpn, MemKind kind) {
    // Frames are stored off by one so that the map's value-initialized 0
    // means "not yet mapped".
    uint64_t& frame = frames_[Key(vpn, kind)];
    if (frame == 0) frame = ++next_frame_;
    return frame - 1;
  }

  // Number of distinct pages touched so far (across both kinds).
  uint64_t mapped_pages() const { return frames_.size(); }

 private:
  static uint64_t Key(uint64_t vpn, MemKind kind) {
    return (vpn << 1) | static_cast<uint64_t>(kind);
  }

  const AddressSpace* space_;
  util::FlatMap64<uint64_t> frames_;
  uint64_t next_frame_ = 0;
};

}  // namespace gpujoin::mem

#endif  // GPUJOIN_MEM_PAGE_TABLE_H_
