#include "mem/address_space.h"

#include "util/bit_util.h"

namespace gpujoin::mem {

const char* MemKindName(MemKind kind) {
  return kind == MemKind::kHost ? "host" : "device";
}

AddressSpace::AddressSpace(const Options& options) : options_(options) {
  GPUJOIN_CHECK(bits::IsPowerOfTwo(options_.host_page_size));
  GPUJOIN_CHECK(bits::IsPowerOfTwo(options_.device_page_size));
  next_base_[static_cast<int>(MemKind::kHost)] = kHostBase;
  next_base_[static_cast<int>(MemKind::kDevice)] = kDeviceBase;
}

Region AddressSpace::Reserve(uint64_t size, MemKind kind, std::string name) {
  GPUJOIN_CHECK(size > 0) << "empty reservation for region " << name;
  const int k = static_cast<int>(kind);
  const uint64_t page = page_size(kind);
  const VirtAddr base = bits::RoundUpPow2(next_base_[k], page);
  Region region{base, size, kind, std::move(name)};
  next_base_[k] = base + size;
  reserved_[k] += size;
  by_base_[base] = regions_.size();
  regions_.push_back(region);
  return region;
}

const Region* AddressSpace::FindRegion(VirtAddr addr) const {
  auto it = by_base_.upper_bound(addr);
  if (it == by_base_.begin()) return nullptr;
  --it;
  const Region& region = regions_[it->second];
  return region.Contains(addr) ? &region : nullptr;
}

}  // namespace gpujoin::mem
