#ifndef GPUJOIN_MEM_ADDRESS_SPACE_H_
#define GPUJOIN_MEM_ADDRESS_SPACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/units.h"

namespace gpujoin::mem {

// A simulated virtual address. The simulator never dereferences these
// directly; data structures pair every functional read with the virtual
// address it would have touched on the real machine, and the hardware
// model (cache, TLB, interconnect) consumes the addresses.
using VirtAddr = uint64_t;

// Which physical memory a virtual region is backed by. On the paper's
// system, base relations and indexes live in CPU memory (kHost) and are
// accessed by the GPU across the interconnect; hash tables, partition
// buffers and join results live in GPU memory (kDevice).
enum class MemKind : uint8_t {
  kHost = 0,
  kDevice = 1,
};

const char* MemKindName(MemKind kind);

// First address of each kind's half of the address space. Host and device
// regions are bump-allocated from these disjoint bases, so an address's
// kind is a single compare (see AddressSpace::KindOf).
inline constexpr VirtAddr kHostBase = 0x0000'0100'0000'0000ULL;
inline constexpr VirtAddr kDeviceBase = 0x0000'7000'0000'0000ULL;

// A reserved virtual address range.
struct Region {
  VirtAddr base = 0;
  uint64_t size = 0;
  MemKind kind = MemKind::kHost;
  std::string name;

  VirtAddr end() const { return base + size; }
  bool Contains(VirtAddr addr) const { return addr >= base && addr < end(); }
};

// Simulated virtual address space shared by the CPU and GPU (as with
// NVLink's unified addressing). Reservations are bump-allocated and
// page-aligned; regions live until the space is destroyed, mirroring the
// paper's setup where relations and indexes are long-lived within a run.
//
// Page sizes are configurable per memory kind. The paper's machine uses
// 1 GiB huge pages for CPU memory; the GPU TLB behaviour under study is
// driven by the host page size.
class AddressSpace {
 public:
  struct Options {
    uint64_t host_page_size = kGiB;   // 1 GiB huge pages (paper Sec. 3.2)
    uint64_t device_page_size = 2 * kMiB;
  };

  AddressSpace() : AddressSpace(Options{}) {}
  explicit AddressSpace(const Options& options);

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Reserves `size` bytes of `kind` memory; the region base is aligned to
  // the kind's page size. `name` labels the region in diagnostics.
  Region Reserve(uint64_t size, MemKind kind, std::string name);

  // Returns the region containing `addr`, or nullptr if unmapped.
  const Region* FindRegion(VirtAddr addr) const;

  // Returns the memory kind backing `addr`. DCHECK-fails on unmapped
  // addresses: touching unreserved memory is a simulator bug. Inline: in
  // release builds this is a single compare on the memory model's
  // per-transaction path.
  MemKind KindOf(VirtAddr addr) const {
    // The fast path avoids the map: kinds live in disjoint address halves.
    // The map lookup (DCHECK only) validates the address is actually
    // mapped.
    GPUJOIN_DCHECK(FindRegion(addr) != nullptr)
        << "access to unmapped address 0x" << std::hex << addr;
    return addr >= kDeviceBase ? MemKind::kDevice : MemKind::kHost;
  }

  uint64_t page_size(MemKind kind) const {
    return kind == MemKind::kHost ? options_.host_page_size
                                  : options_.device_page_size;
  }

  // Page number of `addr` within its kind's page-size granularity.
  uint64_t PageNumber(VirtAddr addr, MemKind kind) const {
    return addr / page_size(kind);
  }

  // Total bytes reserved per kind (the simulated memory footprint).
  uint64_t reserved_bytes(MemKind kind) const {
    return reserved_[static_cast<int>(kind)];
  }

  const std::vector<Region>& regions() const { return regions_; }

 private:
  Options options_;
  // Next free base address per kind. Host and device live in disjoint
  // halves of the address space, as with CUDA unified addressing.
  VirtAddr next_base_[2];
  uint64_t reserved_[2] = {0, 0};
  std::vector<Region> regions_;
  // base -> index into regions_, for address lookup.
  std::map<VirtAddr, size_t> by_base_;
};

}  // namespace gpujoin::mem

#endif  // GPUJOIN_MEM_ADDRESS_SPACE_H_
