#ifndef GPUJOIN_MEM_SIM_ARRAY_H_
#define GPUJOIN_MEM_SIM_ARRAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mem/address_space.h"
#include "util/check.h"

namespace gpujoin::mem {

// A materialized typed array living at a simulated virtual address. Reads
// and writes are real (the data is backed by std::vector) and callers pass
// the corresponding virtual addresses to the hardware model to account for
// the access.
//
// SimArray is the building block for everything that is physically
// materialized in an experiment: probe-side keys, partition buffers, hash
// tables, index nodes of in-core tests, join results. The multi-GiB base
// relations of the large-scale experiments are *not* SimArrays — they are
// procedural columns (workload/key_column.h) that occupy simulated address
// space without real backing memory.
template <typename T>
class SimArray {
 public:
  SimArray() = default;

  SimArray(AddressSpace* space, size_t n, MemKind kind, std::string name)
      : region_(space->Reserve(n * sizeof(T), kind, std::move(name))),
        data_(n) {}

  SimArray(SimArray&&) noexcept = default;
  SimArray& operator=(SimArray&&) noexcept = default;
  SimArray(const SimArray&) = delete;
  SimArray& operator=(const SimArray&) = delete;

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator[](size_t i) {
    GPUJOIN_DCHECK(i < data_.size());
    return data_[i];
  }
  const T& operator[](size_t i) const {
    GPUJOIN_DCHECK(i < data_.size());
    return data_[i];
  }

  // Virtual address of element i (valid for i == size() as an end address).
  VirtAddr addr_of(size_t i) const {
    GPUJOIN_DCHECK(i <= data_.size());
    return region_.base + i * sizeof(T);
  }

  const Region& region() const { return region_; }

  typename std::vector<T>::iterator begin() { return data_.begin(); }
  typename std::vector<T>::iterator end() { return data_.end(); }
  typename std::vector<T>::const_iterator begin() const {
    return data_.begin();
  }
  typename std::vector<T>::const_iterator end() const { return data_.end(); }

  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

 private:
  Region region_;
  std::vector<T> data_;
};

}  // namespace gpujoin::mem

#endif  // GPUJOIN_MEM_SIM_ARRAY_H_
